package pipeline

import (
	"fmt"
	"sync/atomic"

	"clustersim/internal/bpred"
	"clustersim/internal/interconnect"
	"clustersim/internal/isa"
	"clustersim/internal/mem"
	"clustersim/internal/obs"
	"clustersim/internal/telemetry"
	"clustersim/internal/workload"
)

// Processor is one simulated clustered machine bound to a workload and an
// optional reconfiguration Controller. It is not safe for concurrent use.
type Processor struct {
	cfg    Config
	gen    workload.Generator
	ctrl   Controller
	net    interconnect.Network
	memsys mem.System
	bp     *bpred.Predictor
	bankp  *bpred.BankPredictor

	cycle     uint64
	committed uint64

	rob      []uop
	robMask  uint64 // len(rob)-1; rob is sized to a power of two
	headSeq  uint64 // oldest in-flight seq
	tailSeq  uint64 // next seq to dispatch
	fetchSeq uint64 // next seq to fetch

	fq     []fqEntry
	fqHead int
	fqLen  int
	fqCap  int // logical capacity (cfg.FetchQueue); len(fq) is the pow-2 ring size
	fqMask int // len(fq)-1; fq is sized to a power of two

	clusters []clusterState
	active   int
	lsqTotal int // centralized LSQ occupancy
	lsqFull  int // active clusters at LSQ capacity (decentralized dummy gate)
	iqOcc    int // total issue-queue occupancy across all clusters

	// sched is the event stepper's wheel/chain state (see sched.go);
	// rebuilt from the ROB on checkpoint load, never serialized.
	sched scheduler

	// progress records whether any stage did work this cycle; when false,
	// the run loop may fast-forward over provably idle cycles.
	//simlint:nostate per-cycle scratch, reset at the top of every step
	progress bool

	// Decentralized reconfiguration state.
	draining      bool
	pendingActive int
	resumeAt      uint64

	// Front-end redirect state.
	fetchBlockedSeq uint64 // unknown when fetch is unblocked
	fetchResumeAt   uint64

	stores        []uint64 // seqs of in-flight stores, ascending
	storesHead    int
	pendingLoads  []uint64
	dummyReleases []dummyRelease

	modNCluster, modNCount int

	crit *critPredictor

	icache          *mem.ICache
	dtlb            *mem.TLB
	fetchStallUntil uint64
	lastFetchLine   uint64

	lastCommitCycle uint64
	stats           Result

	// stop, when non-nil, is polled every stopCheckMask+1 cycles by Run and
	// RunCycles; raising it makes the run return a *StoppedError. The
	// runner uses it to enforce wall-clock timeouts without killing the
	// process.
	//simlint:nostate runner-owned stop flag, re-armed by the resuming runner
	stop *atomic.Bool

	// Observability. obs is nil when disabled, making every hook a single
	// pointer test; nextSample is the next probe cycle (noSample when
	// sampling is off).
	obs        *obs.Observer
	oh         obsHandles //simlint:nostate observability handles; Checkpointable refuses runs with an observer attached
	nextSample uint64     //simlint:nostate observability cursor; Checkpointable refuses runs with an observer attached

	// Validation. chk is nil when disabled, making the per-cycle hook a
	// single pointer test; view is the reusable state snapshot handed to
	// the checker (see check.go).
	chk  Checker
	view MachineView //simlint:nostate checker scratch; Checkpointable refuses runs with a checker attached

	// Wall-clock phase attribution. ptimer is nil when disabled, making the
	// per-cycle hook a single pointer test; a sampled cycle runs stepTimed
	// instead of the plain stage sequence.
	ptimer *telemetry.PhaseTimer //simlint:nostate attribution-only wall-clock timer; never influences simulated state
}

// New builds a Processor. A nil Controller leaves the active-cluster count
// fixed at cfg.ActiveClusters.
func New(cfg Config, gen workload.Generator, ctrl Controller) (*Processor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if gen == nil {
		return nil, fmt.Errorf("pipeline: nil workload generator")
	}
	p := &Processor{cfg: cfg, gen: gen, ctrl: ctrl, ptimer: cfg.Phases}

	var err error
	switch cfg.Topology {
	case GridTopology:
		p.net, err = interconnect.NewGrid(cfg.Clusters, cfg.HopLatency)
	default:
		p.net, err = interconnect.NewRing(cfg.Clusters, cfg.HopLatency)
	}
	if err != nil {
		return nil, err
	}

	mcfg := mem.DefaultCentralConfig(cfg.Clusters)
	if cfg.Cache == DecentralizedCache {
		mcfg = mem.DefaultDistConfig(cfg.Clusters)
	}
	if cfg.CacheConfig != nil {
		mcfg = *cfg.CacheConfig
	}
	msys, err := mem.New(mcfg, p.net)
	if err != nil {
		return nil, err
	}
	p.memsys = msys
	if cfg.FreeLoadComm && cfg.Cache == CentralizedCache {
		type freeable interface{ SetFreeLoadComm(bool) }
		if f, ok := msys.(freeable); ok {
			f.SetFreeLoadComm(true)
		}
	}

	bcfg := bpred.DefaultConfig()
	if cfg.BranchPred != nil {
		bcfg = *cfg.BranchPred
	}
	p.bp, err = bpred.New(bcfg)
	if err != nil {
		return nil, err
	}
	if cfg.Cache == DecentralizedCache {
		kcfg := bpred.DefaultBankConfig()
		kcfg.MaxBanks = cfg.Clusters
		if cfg.BankPred != nil {
			kcfg = *cfg.BankPred
		}
		p.bankp, err = bpred.NewBank(kcfg)
		if err != nil {
			return nil, err
		}
	}

	// The ROB ring is sized to the next power of two so entry lookup is
	// a mask instead of a division (the logical capacity stays cfg.ROB).
	robLen := 1
	for robLen < cfg.ROB {
		robLen <<= 1
	}
	p.rob = make([]uop, robLen)
	p.robMask = uint64(robLen - 1)
	// The fetch queue is a power-of-two ring for the same reason; its
	// logical capacity stays cfg.FetchQueue.
	fqLen := 1
	for fqLen < cfg.FetchQueue {
		fqLen <<= 1
	}
	p.fq = make([]fqEntry, fqLen)
	p.fqCap = cfg.FetchQueue
	p.fqMask = fqLen - 1
	if !cfg.LegacyStepper {
		p.sched.wheel = make([][]uint64, wheelSpan)
		p.sched.dirty = make([]bool, wheelSpan)
		arena := make([]uint64, wheelSpan*bucketPresize)
		for i := range p.sched.wheel {
			// Capacity-limited subslices: a bucket overflowing its
			// pre-size reallocates privately instead of bleeding into
			// its neighbor's arena segment.
			p.sched.wheel[i], arena = arena[:0:bucketPresize], arena[bucketPresize:]
		}
	}
	// Scratch slices sized for their steady-state maxima so the hot loops
	// never grow them: in-flight stores are bounded by the ROB plus the
	// popStore compaction threshold, pending loads by the ROB, and dummy
	// releases by the total LSQ dummy capacity.
	p.stores = make([]uint64, 0, 4096+cfg.ROB)
	p.pendingLoads = make([]uint64, 0, cfg.ROB)
	p.dummyReleases = make([]dummyRelease, 0, cfg.Clusters*cfg.LSQPerCluster)
	p.clusters = make([]clusterState, cfg.Clusters)
	for i := range p.clusters {
		p.clusters[i] = newClusterState(&cfg)
	}
	p.active = cfg.ActiveClusters
	p.fetchBlockedSeq = unknown
	if cfg.CritTable {
		p.crit = newCritPredictor()
	}
	if cfg.ICacheEnabled {
		p.icache = mem.NewICache(mem.DefaultICacheConfig())
		p.lastFetchLine = ^uint64(0)
	}
	if cfg.TLBEnabled {
		p.dtlb = mem.NewTLB(mem.DefaultTLBConfig())
	}
	if ctrl != nil {
		ctrl.Reset(cfg.Clusters)
	}
	p.initObs(cfg.Observer)
	p.initCheck(cfg.Checker)
	if p.obs != nil && ctrl != nil {
		// Attach after Reset: controllers re-zero their state on Reset.
		if oa, ok := ctrl.(ObserverAware); ok {
			oa.AttachObserver(p.obs)
		}
	}
	return p, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config, gen workload.Generator, ctrl Controller) *Processor {
	p, err := New(cfg, gen, ctrl)
	if err != nil {
		panic(err)
	}
	return p
}

// Config returns the processor's configuration.
func (p *Processor) Config() Config { return p.cfg }

// ActiveClusters returns the current number of dispatch-enabled clusters.
func (p *Processor) ActiveClusters() int { return p.active }

// Cycle returns the current cycle number.
func (p *Processor) Cycle() uint64 { return p.cycle }

// Committed returns the number of committed instructions.
func (p *Processor) Committed() uint64 { return p.committed }

// at returns the ROB entry for an in-flight seq.
func (p *Processor) at(seq uint64) *uop { return &p.rob[seq&p.robMask] }

// stopCheckMask throttles the external-stop-flag poll to one atomic load
// every 1024 cycles, keeping it invisible in the hot loop.
const stopCheckMask = 1023

// SetStopFlag installs an externally owned stop flag. When flag is raised,
// the current (or next) Run/RunCycles call returns a *StoppedError at the
// next poll point. Pass nil to detach. The flag is the only Processor state
// that may be touched from another goroutine.
func (p *Processor) SetStopFlag(flag *atomic.Bool) { p.stop = flag }

// watchdogLimit returns the no-commit cycle budget before a deadlock is
// declared.
func (p *Processor) watchdogLimit() uint64 {
	if p.cfg.WatchdogCycles > 0 {
		return p.cfg.WatchdogCycles
	}
	return 500_000
}

// deadlockError captures the machine's position for a watchdog failure.
func (p *Processor) deadlockError() *DeadlockError {
	return &DeadlockError{
		Cycle:           p.cycle,
		Committed:       p.committed,
		LastCommitCycle: p.lastCommitCycle,
		HeadSeq:         p.headSeq,
		TailSeq:         p.tailSeq,
		FetchSeq:        p.fetchSeq,
		FetchBlockedSeq: p.fetchBlockedSeq,
		Draining:        p.draining,
		Active:          p.active,
	}
}

// Run simulates until n more instructions commit and returns cumulative
// statistics. It may be called repeatedly to extend a run. A wedged pipeline
// surfaces as a *DeadlockError (with the statistics accumulated so far); an
// externally raised stop flag surfaces as a *StoppedError.
func (p *Processor) Run(n uint64) (Result, error) {
	target := p.committed + n
	limit := p.watchdogLimit()
	ff := p.canFastForward()
	for p.committed < target {
		p.step()
		jumped := ff && !p.progress && p.fastForward(0, limit)
		if p.cycle-p.lastCommitCycle > limit {
			return p.Stats(), p.deadlockError()
		}
		if p.stop != nil && (jumped || p.cycle&stopCheckMask == 0) && p.stop.Load() {
			return p.Stats(), &StoppedError{Cycle: p.cycle, Committed: p.committed}
		}
	}
	return p.Stats(), nil
}

// RunCycles simulates exactly n more cycles (regardless of commits) and
// returns cumulative statistics. Multi-threaded studies use this to advance
// co-scheduled machines in lockstep time slices. Deadlock and external stops
// are reported like Run's.
func (p *Processor) RunCycles(n uint64) (Result, error) {
	target := p.cycle + n
	limit := p.watchdogLimit()
	ff := p.canFastForward()
	for p.cycle < target {
		p.step()
		jumped := ff && !p.progress && p.fastForward(target, limit)
		if p.cycle-p.lastCommitCycle > limit {
			return p.Stats(), p.deadlockError()
		}
		if p.stop != nil && (jumped || p.cycle&stopCheckMask == 0) && p.stop.Load() {
			return p.Stats(), &StoppedError{Cycle: p.cycle, Committed: p.committed}
		}
	}
	return p.Stats(), nil
}

// canFastForward reports whether the run loops may jump over idle cycles:
// only the event stepper tracks the wakeup calendar the jump needs, and an
// attached checker must observe every cycle.
func (p *Processor) canFastForward() bool {
	return !p.cfg.LegacyStepper && p.chk == nil
}

// step advances the machine by one cycle. It anchors the hotalloc
// analysis: everything reachable from here inside the package must stay
// allocation-free (the alloc-budget tests measure the same property at
// run time).
//
//simlint:hot
func (p *Processor) step() {
	if p.ptimer != nil && p.ptimer.Due(p.cycle+1) {
		p.stepTimed()
		return
	}
	p.cycle++
	p.progress = false
	p.commitStage()
	p.reconfigStage()
	p.issueStage()
	p.memStage()
	p.dispatchStage()
	p.fetchStage()
	p.stats.ActiveSum += uint64(p.active)
	if p.cycle >= p.nextSample {
		p.observeSample()
	}
	if p.chk != nil {
		p.checkCycle()
	}
}

// stepTimed is step for a sampled cycle: the identical stage sequence with a
// phase-timer lap between stages. It is a mirror rather than inline timing
// branches so the untimed hot path pays only the single Due test — the clock
// reads live here (inside telemetry), never in the plain step.
//
//simlint:hot
func (p *Processor) stepTimed() {
	cur := p.ptimer.Begin()
	p.cycle++
	p.progress = false
	p.commitStage()
	cur = p.ptimer.Lap(telemetry.PhaseCommit, cur)
	p.reconfigStage()
	cur = p.ptimer.Lap(telemetry.PhaseReconfig, cur)
	p.issueStage()
	cur = p.ptimer.Lap(telemetry.PhaseIssue, cur)
	p.memStage()
	cur = p.ptimer.Lap(telemetry.PhaseMem, cur)
	p.dispatchStage()
	cur = p.ptimer.Lap(telemetry.PhaseDispatch, cur)
	p.fetchStage()
	cur = p.ptimer.Lap(telemetry.PhaseFetch, cur)
	p.stats.ActiveSum += uint64(p.active)
	if p.cycle >= p.nextSample {
		p.observeSample()
	}
	if p.chk != nil {
		p.checkCycle()
	}
	p.ptimer.Lap(telemetry.PhaseObserve, cur)
}

// Stats returns cumulative run statistics.
func (p *Processor) Stats() Result {
	r := p.stats
	r.Benchmark = p.gen.Name()
	if p.ctrl != nil {
		r.Policy = p.ctrl.Name()
	} else {
		r.Policy = fmt.Sprintf("static-%d", p.cfg.ActiveClusters)
	}
	r.Cycles = p.cycle
	r.Instructions = p.committed
	r.Mem = p.memsys.Stats()
	r.Net = p.net.Stats()
	r.Branch = p.bp.Stats()
	if p.bankp != nil {
		r.Bank = p.bankp.Stats()
	}
	if p.icache != nil {
		r.ICacheMisses = p.icache.Misses()
	}
	if p.dtlb != nil {
		r.TLBMisses = p.dtlb.Misses()
	}
	if p.obs != nil && p.obs.Registry != nil {
		p.syncObsCounters()
	}
	return r
}

// ---------------------------------------------------------------- commit --

func (p *Processor) commitStage() {
	now := p.cycle
	for n := 0; n < p.cfg.CommitWidth && p.headSeq < p.tailSeq; n++ {
		u := p.at(p.headSeq)
		if !u.issued {
			return
		}
		switch {
		case u.isLoad():
			if !u.memDone || u.doneAt > now {
				return
			}
		case u.isStore():
			if u.agenDoneAt > now {
				return
			}
			if p.opArrival(u, u.in.SrcDist2, &u.src2At) > now {
				return
			}
			if p.cfg.Cache == DecentralizedCache && u.resolveGlobalAt > now {
				return
			}
		default:
			if u.doneAt > now {
				return
			}
		}

		// Retire.
		cs := &p.clusters[u.cluster]
		if u.in.HasDest {
			if u.in.Class.IsFP() {
				cs.fpRegs--
			} else {
				cs.intRegs--
			}
		}
		if u.in.Class.IsMem() {
			if p.cfg.Cache == CentralizedCache {
				p.lsqTotal--
			} else {
				p.lsqDelta(int(u.cluster), -1)
			}
			if u.isStore() {
				at := now
				if p.dtlb != nil {
					at += p.dtlb.Translate(u.in.Addr)
				}
				p.memsys.StoreCommit(at, int(u.cluster), u.in.Addr)
				p.popStore(u.seq)
			}
		}
		if u.distant {
			p.stats.DistantCommitted++
		}
		if u.mispredicted {
			p.stats.Redirects++
			if p.obs != nil {
				p.observeRedirect(now, u.seq, u.in.PC)
			}
		}
		cls := u.in.Class
		ev := CommitEvent{
			Cycle:        now,
			Seq:          u.seq,
			PC:           u.in.PC,
			IsBranch:     cls == isa.Branch,
			IsCall:       cls == isa.Call,
			IsReturn:     cls == isa.Return,
			IsMem:        cls.IsMem(),
			Distant:      u.distant,
			Mispredicted: u.mispredicted,
		}
		p.headSeq++
		p.committed++
		p.lastCommitCycle = now
		p.progress = true
		if p.ctrl != nil {
			if want := p.ctrl.OnCommit(ev); want > 0 {
				p.requestActive(want)
			}
		}
	}
}

// popStore removes seq from the store window (always the oldest store).
func (p *Processor) popStore(seq uint64) {
	if p.storesHead < len(p.stores) && p.stores[p.storesHead] == seq {
		p.storesHead++
		if p.storesHead > 4096 {
			p.stores = append(p.stores[:0], p.stores[p.storesHead:]...) //simlint:alloc compaction copies into the slice's own capacity; the window is bounded by the store queue
			p.storesHead = 0
		}
		return
	}
	// A store must retire in order; anything else is a bookkeeping bug.
	//simlint:allow nopanic scoreboard-corruption invariant, unreachable from any configuration; the watchdog recover turns it into a DeadlockError dump
	panic("pipeline: store retired out of order")
}

// ------------------------------------------------------------- reconfig --

// requestActive asks for want active clusters.
func (p *Processor) requestActive(want int) {
	if want < 1 {
		want = 1
	}
	if want > p.cfg.Clusters {
		want = p.cfg.Clusters
	}
	if p.cfg.Cache == CentralizedCache {
		if want != p.active {
			old := p.active
			p.active = want
			p.recountLSQFull()
			p.progress = true
			p.stats.Reconfigs++
			if p.obs != nil {
				p.observeReconfig(old, want, 0, 0)
			}
		}
		return
	}
	// Decentralized: drain, flush, then switch (§5).
	if p.draining {
		p.pendingActive = want
		return
	}
	if want != p.active {
		p.draining = true
		p.pendingActive = want
	}
}

func (p *Processor) reconfigStage() {
	if !p.draining || p.headSeq != p.tailSeq {
		return
	}
	done, writebacks := p.memsys.Flush(p.cycle)
	old := p.active
	p.memsys.SetActive(p.pendingActive)
	p.active = p.pendingActive
	p.recountLSQFull()
	p.resumeAt = done
	p.draining = false
	p.progress = true
	p.stats.Reconfigs++
	if p.obs != nil {
		p.observeReconfig(old, p.active, writebacks, done-p.cycle)
	}
}

// ---------------------------------------------------------------- issue --

// opArrival returns the cycle the operand dist back from u is available in
// u's cluster, or unknown if its producer has not issued. The result is
// cached in *cache; inter-cluster transfers reserve network links once per
// (producer, consumer-cluster) pair.
func (p *Processor) opArrival(u *uop, dist uint32, cache *uint64) uint64 {
	if *cache != unknown {
		return *cache
	}
	if dist == 0 {
		*cache = 0
		return 0
	}
	pseq := u.seq - uint64(dist)
	if uint64(dist) > u.seq || pseq < p.headSeq {
		*cache = 0 // producer retired; value is architected
		return 0
	}
	prod := p.at(pseq)
	if !prod.issued {
		return unknown
	}
	if prod.isLoad() && !prod.memDone {
		return unknown
	}
	t := prod.doneAt
	c := int(u.cluster)
	if c != int(prod.cluster) && !p.cfg.FreeRegComm {
		if prod.fwd[c] == 0 {
			arr := p.net.Send(t, int(prod.cluster), c)
			prod.fwd[c] = arr
			p.stats.RegTransfers++
			p.stats.RegLatencySum += arr - t
		}
		t = prod.fwd[c]
	}
	*cache = t
	return t
}

func (p *Processor) issueStage() {
	if !p.cfg.LegacyStepper {
		p.issueStageEvent()
		return
	}
	now := p.cycle
	for ci := range p.clusters {
		cs := &p.clusters[ci]
		p.issueQueue(cs, &cs.iqInt, now)
		p.issueQueue(cs, &cs.iqFP, now)
	}
}

// issueQueue scans one issue queue oldest-first, issuing every ready
// instruction whose functional unit is free, and compacts the queue.
func (p *Processor) issueQueue(cs *clusterState, q *[]uint64, now uint64) {
	s := *q
	out := s[:0]
	for _, seq := range s {
		u := p.at(seq)
		if v, _, _ := p.tryIssueV(cs, u, now); v != vIssued {
			out = append(out, seq) //simlint:alloc in-place filter over s[:0]; writes never outrun reads of the same backing array
		}
	}
	*q = out
}

// issueVerdict is tryIssueV's outcome: issued, re-check at a known future
// cycle, or blocked on an unissued producer (no wake cycle computable).
type issueVerdict uint8

const (
	vWake issueVerdict = iota
	vChain
	vIssued
)

// tryIssueV attempts to issue u at cycle now. On vWake, `at` is the sound
// re-evaluation cycle (strictly future); on vChain, `pseq` is the unissued
// (or not-yet-done load) producer to wait on. The legacy stepper ignores
// everything but the vIssued outcome; the event stepper parks or chains on
// the rest.
func (p *Processor) tryIssueV(cs *clusterState, u *uop, now uint64) (v issueVerdict, at, pseq uint64) {
	if u.readyAt > now {
		return vWake, u.readyAt, 0
	}
	if u.dispatchReady > now {
		u.readyAt = u.dispatchReady
		return vWake, u.dispatchReady, 0
	}
	// The cached-arrival hit is checked inline: most evaluations run with
	// both arrivals already known (precomputed at dispatch or cached by
	// an earlier probe), and the call is pure overhead then.
	a := u.src1At
	if a == unknown {
		a = p.opArrival(u, u.in.SrcDist1, &u.src1At)
	}
	if a > now {
		if a != unknown {
			u.readyAt = a
			return vWake, a, 0
		}
		return vChain, 0, u.seq - uint64(u.in.SrcDist1)
	}
	// Stores issue address generation without waiting for data; all other
	// two-operand instructions need both.
	if !u.isStore() {
		a = u.src2At
		if a == unknown {
			a = p.opArrival(u, u.in.SrcDist2, &u.src2At)
		}
		if a > now {
			if a != unknown {
				u.readyAt = a
				return vWake, a, 0
			}
			return vChain, 0, u.seq - uint64(u.in.SrcDist2)
		}
	}
	cls := u.in.Class
	lat := uint64(cls.Latency())
	busyUntil := now + 1
	if !cls.Pipelined() {
		busyUntil = now + lat
	}
	if ok, next := cs.takeFU(fuFor(cls), now, busyUntil); !ok {
		return vWake, next, 0
	}

	if cls.IsFP() {
		cs.nFP--
	} else {
		cs.nInt--
	}
	p.iqOcc--
	p.progress = true
	u.issued = true
	u.issueAt = now
	p.trainCriticality(u)
	if u.seq-p.headSeq >= uint64(p.cfg.DistantDepth) {
		u.distant = true
		p.stats.DistantIssued++
	}

	switch {
	case u.isLoad():
		u.agenDoneAt = now + lat
		p.pendingLoads = append(p.pendingLoads, u.seq) //simlint:alloc amortized: pendingLoads reaches LSQ-bounded capacity once, then is reused
	case u.isStore():
		u.agenDoneAt = now + lat
		u.doneAt = u.agenDoneAt
		p.storeResolved(u)
	default:
		u.doneAt = now + lat
		if u.in.Class.IsCtrl() && u.seq == p.fetchBlockedSeq {
			// Redirect: the correct target travels back to the
			// front-end next to cluster 0.
			hops := uint64(p.net.Hops(int(u.cluster), 0)) * uint64(p.cfg.HopLatency)
			p.fetchResumeAt = u.doneAt + hops + 1
		}
	}
	if u.in.Class.IsMem() {
		p.trainBank(u)
	}
	return vIssued, 0, 0
}

// storeResolved handles a store's address becoming known: under the
// decentralized LSQ the address is broadcast to dissolve the dummy slots in
// the other active clusters (§5).
func (p *Processor) storeResolved(u *uop) {
	if p.cfg.Cache == CentralizedCache {
		u.resolveGlobalAt = u.agenDoneAt
		return
	}
	active := int(u.activeAtDispatch)
	u.resolveGlobalAt = p.net.Broadcast(u.agenDoneAt, int(u.cluster), active)
	p.stats.StoreBroadcasts++
	for c := 0; c < active; c++ {
		if c == int(u.cluster) {
			continue
		}
		p.dummyReleases = append(p.dummyReleases, dummyRelease{at: u.resolveGlobalAt, cluster: int32(c)}) //simlint:alloc amortized: dummyReleases reaches cluster-bounded capacity once, then is reused
	}
}

// trainBank updates the bank predictor with the memory operation's actual
// bank and records bank mispredictions.
func (p *Processor) trainBank(u *uop) {
	if p.bankp == nil {
		return
	}
	actual := p.memsys.Bank(u.in.Addr)
	p.bankp.Update(u.in.PC, actual, int(u.activeAtDispatch))
	if !p.cfg.PerfectBankPred {
		if p.memsys.HomeCluster(u.in.Addr) != int(u.predictedHome) {
			u.bankMispred = true
			p.stats.BankMispredicts++
		}
	}
}

// ------------------------------------------------------------------ mem --

func (p *Processor) memStage() {
	now := p.cycle
	// Dissolve store dummy slots whose broadcast has arrived.
	if len(p.dummyReleases) > 0 {
		kept := p.dummyReleases[:0]
		for _, d := range p.dummyReleases {
			if d.at <= now {
				p.lsqDelta(int(d.cluster), -1)
				p.progress = true
			} else {
				kept = append(kept, d) //simlint:alloc in-place filter over dummyReleases[:0]; same backing array
			}
		}
		p.dummyReleases = kept
	}
	// Try to start memory access for loads whose address is known.
	if len(p.pendingLoads) > 0 {
		kept := p.pendingLoads[:0]
		for _, seq := range p.pendingLoads {
			u := p.at(seq)
			if u.agenDoneAt > now || !p.tryStartLoad(u, now) {
				kept = append(kept, seq) //simlint:alloc in-place filter over pendingLoads[:0]; same backing array
			} else {
				// The load's arrival is now computable: wake chained
				// consumers for the next cycle, when the legacy scan
				// would first see memDone (issue precedes mem).
				p.progress = true
				p.wakeChain(u, 0, nil, 0)
			}
		}
		p.pendingLoads = kept
	}
}

// tryStartLoad checks memory ordering for a load and, when clear, either
// forwards from an older matching store or accesses the cache. It returns
// whether the load's completion is now scheduled.
func (p *Processor) tryStartLoad(u *uop, now uint64) bool {
	// Fast path: if a previous walk blocked on a specific store, nothing
	// can have changed until that store resolves.
	if u.waitStore != 0 {
		wseq := u.waitStore - 1
		if wseq >= p.headSeq {
			s := p.at(wseq)
			if s.isStore() && s.seq == wseq {
				resolveAt := s.agenDoneAt
				if p.cfg.Cache == DecentralizedCache && s.cluster != u.cluster {
					resolveAt = s.resolveGlobalAt
				}
				if !s.issued || resolveAt > now {
					return false
				}
			}
		}
		u.waitStore = 0
	}
	// Walk older in-flight stores youngest-first. An unresolved older
	// store (or, decentralized, an undissolved dummy) blocks the load;
	// a resolved matching store forwards.
	for i := len(p.stores) - 1; i >= p.storesHead; i-- {
		sseq := p.stores[i]
		if sseq >= u.seq {
			continue
		}
		s := p.at(sseq)
		resolveAt := s.agenDoneAt
		if p.cfg.Cache == DecentralizedCache && s.cluster != u.cluster {
			resolveAt = s.resolveGlobalAt
		}
		if !s.issued || resolveAt > now {
			u.waitStore = sseq + 1
			return false
		}
		if s.in.Addr>>3 == u.in.Addr>>3 {
			// Store-to-load forwarding: data moves from the
			// store's LSQ to the load's cluster.
			dataAt := p.opArrival(s, s.in.SrcDist2, &s.src2At)
			if dataAt == unknown || dataAt > now {
				return false
			}
			t := now + 1
			if s.cluster != u.cluster && !p.cfg.FreeRegComm {
				t = p.net.Send(t, int(s.cluster), int(u.cluster))
			}
			u.doneAt = t
			u.memDone = true
			u.memStarted = true
			p.stats.LoadForwards++
			return true
		}
	}
	start := now
	if u.agenDoneAt > start {
		start = u.agenDoneAt
	}
	if p.dtlb != nil {
		start += p.dtlb.Translate(u.in.Addr)
	}
	done, _ := p.memsys.Load(start, int(u.cluster), u.in.Addr)
	u.doneAt = done
	u.memDone = true
	u.memStarted = true
	return true
}

// -------------------------------------------------------------- dispatch --

func (p *Processor) dispatchStage() {
	now := p.cycle
	if p.draining || now < p.resumeAt {
		return
	}
	for n := 0; n < p.cfg.DispatchWidth && p.fqLen > 0; n++ {
		e := &p.fq[p.fqHead]
		if e.earliest > now {
			return
		}
		if p.tailSeq-p.headSeq >= uint64(p.cfg.ROB) {
			return
		}
		in := &e.in
		// Decentralized stores need a dummy slot in every active LSQ;
		// lsqFull counts active clusters at capacity.
		if in.Class == isa.Store && p.cfg.Cache == DecentralizedCache && p.lsqFull > 0 {
			return
		}
		cl := p.steer(in, e.seq)
		if cl < 0 {
			return
		}

		u := p.at(e.seq)
		// Operand arrivals with no in-flight producer (no dependence, or
		// one already architected) are 0 now and forever; precomputing
		// them here lets the issue path skip those opArrival calls. A
		// producer in flight now may retire before the first evaluation,
		// which opArrival handles — the converse never happens.
		src1At, src2At := uint64(unknown), uint64(unknown)
		if d := uint64(in.SrcDist1); d == 0 || d > e.seq || e.seq-d < p.headSeq {
			src1At = 0
		}
		if d := uint64(in.SrcDist2); d == 0 || d > e.seq || e.seq-d < p.headSeq {
			src2At = 0
		}
		*u = uop{
			in:               *in,
			seq:              e.seq,
			cluster:          int32(cl),
			mispredicted:     e.mispred,
			activeAtDispatch: int32(p.active),
			src1At:           src1At,
			src2At:           src2At,
		}
		hops := uint64(p.net.Hops(0, cl)) * uint64(p.cfg.HopLatency)
		u.dispatchReady = now + 1 + hops

		cs := &p.clusters[cl]
		if p.cfg.LegacyStepper {
			q := cs.iqFor(in.Class)
			*q = append(*q, e.seq) //simlint:alloc amortized: legacy issue queues reach IQ-bounded capacity once, then are reused
		} else {
			// First possibly-productive evaluation is dispatchReady:
			// the legacy scan's earlier probes only observe the
			// dispatchReady guard.
			u.key = p.keyOf(u)
			p.parkU(u.key, u.dispatchReady)
		}
		if in.Class.IsFP() {
			cs.nFP++
		} else {
			cs.nInt++
		}
		p.iqOcc++
		if in.HasDest {
			if in.Class.IsFP() {
				cs.fpRegs++
			} else {
				cs.intRegs++
			}
		}
		if in.Class.IsMem() {
			if p.cfg.Cache == CentralizedCache {
				p.lsqTotal++
			} else if in.Class == isa.Store {
				for c := 0; c < p.active; c++ {
					p.lsqDelta(c, 1)
				}
			} else {
				p.lsqDelta(cl, 1)
			}
			if in.Class == isa.Store {
				p.stores = append(p.stores, e.seq) //simlint:alloc amortized: the store window grows to its 4096-entry compaction bound once
			}
			if p.cfg.Cache == DecentralizedCache {
				u.predictedHome = int32(p.predictHome(in))
			}
		}

		p.tailSeq = e.seq + 1
		p.fqHead = (p.fqHead + 1) & p.fqMask
		p.fqLen--
		p.stats.Dispatched++
		p.progress = true
	}
}

// ----------------------------------------------------------------- fetch --

func (p *Processor) fetchStage() {
	now := p.cycle
	if now < p.fetchStallUntil {
		return
	}
	if p.fetchBlockedSeq != unknown {
		if p.fetchResumeAt == 0 || now < p.fetchResumeAt {
			return
		}
		p.fetchBlockedSeq = unknown
		p.fetchResumeAt = 0
	}
	blocks := 0
	for n := 0; n < p.cfg.FetchWidth && p.fqLen < p.fqCap; n++ {
		// Fill the fetch-queue slot in place: generating into a stack
		// variable and copying it in would force a heap allocation per
		// instruction (the generator is an interface, so the compiler
		// must assume the pointer escapes).
		slot := (p.fqHead + p.fqLen) & p.fqMask
		e := &p.fq[slot]
		p.gen.Next(&e.in)
		in := &e.in
		seq := p.fetchSeq
		p.fetchSeq++

		// Instruction-cache probe on every line crossing; a miss stalls
		// the front end while the line fills (the fetched instruction
		// still enters the queue, delayed by the fill).
		extra := uint64(0)
		if p.icache != nil {
			if line := in.PC >> p.icache.LineShift(); line != p.lastFetchLine {
				p.lastFetchLine = line
				extra = p.icache.Fetch(in.PC)
				if extra > 0 {
					p.fetchStallUntil = now + extra
				}
			}
		}

		mispred := false
		switch in.Class {
		case isa.Branch:
			mispred = p.bp.PredictBranch(in.PC, in.Taken, in.Target)
		case isa.Call:
			mispred = p.bp.PredictCall(in.PC, in.Target)
		case isa.Return:
			mispred = p.bp.PredictReturn(in.Target)
		}

		e.seq = seq
		e.earliest = now + extra + uint64(p.cfg.FrontLatency)
		e.mispred = mispred
		p.fqLen++
		p.stats.Fetched++
		p.progress = true

		if mispred {
			p.fetchBlockedSeq = seq
			p.fetchResumeAt = 0
			return
		}
		if extra > 0 {
			return // stalled on the instruction-cache fill
		}
		if in.EndsBlock {
			blocks++
			if blocks == 2 {
				return
			}
		}
	}
}
