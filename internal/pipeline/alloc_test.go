package pipeline

import (
	"testing"

	"clustersim/internal/workload"
)

// TestSteadyStateAllocBudget pins the per-window allocation count of the
// simulation hot loop. The fetch path fills fetch-queue slots in place and
// the mem/commit stages reuse their scratch slices, so a steady-state
// 10K-instruction window must stay within a handful of allocations (the
// occasional stores-slice regrow). Before the in-place fetch fill this was
// ~10,000 allocations per window — one escaping isa.Instruction per fetch.
func TestSteadyStateAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is slow under -short")
	}
	for _, bench := range []string{"swim", "gzip", "vpr"} {
		gen, err := workload.New(bench, 1)
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(DefaultConfig(), gen, nil)
		if err != nil {
			t.Fatal(err)
		}
		mustRun(t, p, 50_000) // reach steady state: scratch slices at working size
		avg := testing.AllocsPerRun(10, func() {
			mustRun(t, p, 10_000)
		})
		// Budget of 8 allocs per 10K instructions = 1600x headroom over
		// the pre-fix behavior while still tolerating rare slice regrows.
		if avg > 8 {
			t.Errorf("%s: %.1f allocs per 10K-instruction window, budget 8", bench, avg)
		}
	}
}
