package pipeline

import "clustersim/internal/isa"

// unknown is the sentinel for an operand arrival that cannot be computed
// yet (its producer has not issued). Valid cycle numbers start at 1.
const unknown = ^uint64(0)

// uop is one in-flight dynamic instruction (a ROB entry).
type uop struct {
	in  isa.Instruction
	seq uint64

	cluster int32

	issued       bool
	memDone      bool
	memStarted   bool
	distant      bool
	mispredicted bool
	bankMispred  bool

	// dispatchReady is the cycle the instruction sits in its cluster's
	// issue queue (dispatch cycle plus the non-uniform dispatch hops).
	dispatchReady uint64
	// issueAt and doneAt are the issue cycle and the cycle the result is
	// available for same-cluster consumers. For memory operations doneAt
	// is valid only once memDone is set.
	issueAt uint64
	doneAt  uint64
	// agenDoneAt is the cycle a memory operation's effective address is
	// known (address generation complete).
	agenDoneAt uint64
	// resolveGlobalAt is, for stores under the decentralized LSQ, the
	// cycle the address broadcast reaches every other cluster and the
	// dummy slots dissolve.
	resolveGlobalAt uint64

	// predictedHome is the bank-predictor's steering hint for memory
	// operations under the decentralized cache.
	predictedHome int32
	// activeAtDispatch records how many clusters were active when this
	// instruction dispatched (store dummies span exactly that set).
	activeAtDispatch int32

	// src1At and src2At cache operand arrival cycles at this cluster;
	// unknown until computable.
	src1At, src2At uint64

	// waitStore, when nonzero, is seq+1 of the unresolved older store
	// that blocked this load's last ordering walk; the walk is skipped
	// until that store resolves.
	waitStore uint64

	// readyAt is a wakeup hint: the earliest cycle at which re-checking
	// issue readiness can possibly succeed (the max of the known-future
	// necessary conditions at the last failed check).
	readyAt uint64

	// fwd caches the arrival cycle of this instruction's result at each
	// consumer cluster (0 = not yet transferred), so one physical
	// transfer serves all consumers in a cluster.
	fwd [MaxClusters]uint64
}

// isStore and isLoad are convenience accessors.
func (u *uop) isStore() bool { return u.in.Class == isa.Store }
func (u *uop) isLoad() bool  { return u.in.Class == isa.Load }

// fqEntry is a fetched instruction waiting to dispatch.
type fqEntry struct {
	in       isa.Instruction
	seq      uint64
	earliest uint64 // earliest dispatch cycle (front-end pipeline depth)
	mispred  bool   // this control transfer redirected the front-end
}

// fuKind classifies functional units within a cluster.
type fuKind uint8

const (
	fuIntALU fuKind = iota
	fuIntMulDiv
	fuFPALU
	fuFPMulDiv
	numFUKinds
)

// fuFor maps an operation class to the functional unit that executes it.
// Loads, stores and control transfers use the integer ALU for address
// generation / resolution.
func fuFor(c isa.Class) fuKind {
	switch c {
	case isa.IntMult, isa.IntDiv:
		return fuIntMulDiv
	case isa.FPALU:
		return fuFPALU
	case isa.FPMult, isa.FPDiv:
		return fuFPMulDiv
	default:
		return fuIntALU
	}
}

// clusterState holds one cluster's queues, registers and functional units.
type clusterState struct {
	// iqInt and iqFP hold seqs of dispatched, unissued instructions in
	// program order.
	iqInt, iqFP []uint64
	// intRegs and fpRegs count physical registers in use.
	intRegs, fpRegs int
	// lsq counts occupied LSQ slots (loads steered here, plus store
	// dummies under the decentralized model).
	lsq int
	// fuFree[k] holds the next-free cycle of each unit of kind k.
	fuFree [numFUKinds][]uint64
}

func newClusterState(cfg *Config) clusterState {
	var cs clusterState
	cs.iqInt = make([]uint64, 0, cfg.IQPerCluster)
	cs.iqFP = make([]uint64, 0, cfg.IQPerCluster)
	counts := [numFUKinds]int{cfg.IntALU, cfg.IntMulDiv, cfg.FPALU, cfg.FPMulDiv}
	for k := range cs.fuFree {
		cs.fuFree[k] = make([]uint64, counts[k])
	}
	return cs
}

// iqFor returns the issue queue (integer or floating point) for a class.
func (cs *clusterState) iqFor(c isa.Class) *[]uint64 {
	if c.IsFP() {
		return &cs.iqFP
	}
	return &cs.iqInt
}

// occupancy returns the total issue-queue occupancy (the steering
// heuristic's load metric).
func (cs *clusterState) occupancy() int { return len(cs.iqInt) + len(cs.iqFP) }

// takeFU reserves a unit of kind k at cycle now and returns whether one was
// free. busyUntil is the cycle the unit next accepts work (now+1 for
// pipelined classes, completion for divides).
func (cs *clusterState) takeFU(k fuKind, now, busyUntil uint64) bool {
	units := cs.fuFree[k]
	for i := range units {
		if units[i] <= now {
			units[i] = busyUntil
			return true
		}
	}
	return false
}

// dummyRelease schedules the dissolution of a store's dummy LSQ slot in a
// cluster at a known cycle (the store-address broadcast arrival).
type dummyRelease struct {
	at      uint64
	cluster int32
}
