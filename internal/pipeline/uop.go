package pipeline

import "clustersim/internal/isa"

// unknown is the sentinel for an operand arrival that cannot be computed
// yet (its producer has not issued). Valid cycle numbers start at 1.
const unknown = ^uint64(0)

// uop is one in-flight dynamic instruction (a ROB entry).
//
// Field order is deliberate: the first 64 bytes are exactly the fields an
// issue-path evaluation touches (the wake paths read key/wHead/wNext, the
// readiness guards read readyAt/dispatchReady/src1At/src2At), and the
// second cache line holds what a producer probe needs (doneAt, issued,
// cluster, the instruction's class and operand distances). The entry is
// ~300 bytes; keeping an evaluation to the first two lines instead of a
// walk across the whole entry is a measurable share of issue-phase time.
type uop struct {
	seq uint64

	// readyAt is a wakeup hint: the earliest cycle at which re-checking
	// issue readiness can possibly succeed (the max of the known-future
	// necessary conditions at the last failed check).
	readyAt uint64
	// dispatchReady is the cycle the instruction sits in its cluster's
	// issue queue (dispatch cycle plus the non-uniform dispatch hops).
	dispatchReady uint64
	// src1At and src2At cache operand arrival cycles at this cluster;
	// unknown until computable. Arrivals decidable at dispatch (no
	// in-flight producer) are precomputed there.
	src1At, src2At uint64

	// wHead and wNext are the event stepper's intrusive wait-chain links:
	// wHead is seq+1 of the newest unissued consumer blocked on this
	// instruction (0 = none); wNext chains this instruction through its
	// producer's wait chain (see sched.go). Always zero under the legacy
	// stepper and in snapshots (links are rebuilt on load).
	wHead, wNext uint64

	// key is the packed agenda key (cluster, fp-queue bit, seq — see
	// sched.go), cached at dispatch so the wake paths never recompute
	// it. Rebuilt alongside the links on checkpoint load; unused under
	// the legacy stepper.
	key uint64

	// issueAt and doneAt are the issue cycle and the cycle the result is
	// available for same-cluster consumers. For memory operations doneAt
	// is valid only once memDone is set.
	doneAt  uint64
	issueAt uint64

	cluster int32

	issued       bool
	memDone      bool
	memStarted   bool
	distant      bool
	mispredicted bool
	bankMispred  bool

	in isa.Instruction

	// agenDoneAt is the cycle a memory operation's effective address is
	// known (address generation complete).
	agenDoneAt uint64
	// resolveGlobalAt is, for stores under the decentralized LSQ, the
	// cycle the address broadcast reaches every other cluster and the
	// dummy slots dissolve.
	resolveGlobalAt uint64

	// predictedHome is the bank-predictor's steering hint for memory
	// operations under the decentralized cache.
	predictedHome int32
	// activeAtDispatch records how many clusters were active when this
	// instruction dispatched (store dummies span exactly that set).
	activeAtDispatch int32

	// waitStore, when nonzero, is seq+1 of the unresolved older store
	// that blocked this load's last ordering walk; the walk is skipped
	// until that store resolves.
	waitStore uint64

	// fwd caches the arrival cycle of this instruction's result at each
	// consumer cluster (0 = not yet transferred), so one physical
	// transfer serves all consumers in a cluster.
	fwd [MaxClusters]uint64
}

// isStore and isLoad are convenience accessors.
func (u *uop) isStore() bool { return u.in.Class == isa.Store }
func (u *uop) isLoad() bool  { return u.in.Class == isa.Load }

// fqEntry is a fetched instruction waiting to dispatch.
type fqEntry struct {
	in       isa.Instruction
	seq      uint64
	earliest uint64 // earliest dispatch cycle (front-end pipeline depth)
	mispred  bool   // this control transfer redirected the front-end
}

// fuKind classifies functional units within a cluster.
type fuKind uint8

const (
	fuIntALU fuKind = iota
	fuIntMulDiv
	fuFPALU
	fuFPMulDiv
	numFUKinds
)

// fuFor maps an operation class to the functional unit that executes it.
// Loads, stores and control transfers use the integer ALU for address
// generation / resolution.
func fuFor(c isa.Class) fuKind {
	switch c {
	case isa.IntMult, isa.IntDiv:
		return fuIntMulDiv
	case isa.FPALU:
		return fuFPALU
	case isa.FPMult, isa.FPDiv:
		return fuFPMulDiv
	default:
		return fuIntALU
	}
}

// clusterState holds one cluster's queues, registers and functional units.
type clusterState struct {
	// iqInt and iqFP hold seqs of dispatched, unissued instructions in
	// program order. The event stepper keeps them empty (the wheel and
	// wait chains replace the scan) and derives them on checkpoint save;
	// nInt and nFP count the occupancy in both modes.
	iqInt, iqFP []uint64
	nInt, nFP   int
	// intRegs and fpRegs count physical registers in use.
	intRegs, fpRegs int
	// lsq counts occupied LSQ slots (loads steered here, plus store
	// dummies under the decentralized model).
	lsq int
	// fuFree[k] holds the next-free cycle of each unit of kind k.
	fuFree [numFUKinds][]uint64
}

func newClusterState(cfg *Config) clusterState {
	var cs clusterState
	cs.iqInt = make([]uint64, 0, cfg.IQPerCluster)
	cs.iqFP = make([]uint64, 0, cfg.IQPerCluster)
	counts := [numFUKinds]int{cfg.IntALU, cfg.IntMulDiv, cfg.FPALU, cfg.FPMulDiv}
	// One contiguous backing array for all kinds keeps the per-kind
	// slices on the same cache line in the common small-count configs.
	total := 0
	for _, n := range counts {
		total += n
	}
	buf := make([]uint64, total)
	for k := range cs.fuFree {
		cs.fuFree[k], buf = buf[:counts[k]:counts[k]], buf[counts[k]:]
	}
	return cs
}

// iqFor returns the issue queue (integer or floating point) for a class.
func (cs *clusterState) iqFor(c isa.Class) *[]uint64 {
	if c.IsFP() {
		return &cs.iqFP
	}
	return &cs.iqInt
}

// occupancy returns the total issue-queue occupancy (the steering
// heuristic's load metric). Counter-based so it holds under both steppers.
func (cs *clusterState) occupancy() int { return cs.nInt + cs.nFP }

// iqCount returns the occupancy of the queue serving a class.
func (cs *clusterState) iqCount(c isa.Class) int {
	if c.IsFP() {
		return cs.nFP
	}
	return cs.nInt
}

// takeFU reserves a unit of kind k at cycle now; on success next is
// meaningless, on failure it is the earliest cycle any unit of the kind
// accepts work — the sound re-park cycle (unit free times only ever move
// later, so nothing frees before it). busyUntil is the cycle the taken
// unit next accepts work (now+1 for pipelined classes, completion for
// divides). One pass serves both outcomes: the scan that proves no unit is
// free has already seen every free time.
func (cs *clusterState) takeFU(k fuKind, now, busyUntil uint64) (ok bool, next uint64) {
	units := cs.fuFree[k]
	next = units[0]
	for i := range units {
		if units[i] <= now {
			units[i] = busyUntil
			return true, 0
		}
		if units[i] < next {
			next = units[i]
		}
	}
	return false, next
}

// dummyRelease schedules the dissolution of a store's dummy LSQ slot in a
// cluster at a known cycle (the store-address broadcast arrival).
type dummyRelease struct {
	at      uint64
	cluster int32
}
