package pipeline_test

// Mutation check: deliberately corrupt the machine mid-run and require the
// invariant checker to notice. This is the test of the checker itself — the
// clean-run tests in internal/check prove the absence of false positives,
// this proves the presence of true positives. It lives in the external test
// package so it can import internal/check (which imports pipeline).

import (
	"strings"
	"testing"

	"clustersim/internal/check"
	"clustersim/internal/pipeline"
	"clustersim/internal/workload"
)

func corruptedRun(t *testing.T, delta int) *check.Invariants {
	t.Helper()
	cfg := pipeline.DefaultConfig()
	chk := check.New()
	cfg.Checker = chk
	p, err := pipeline.New(cfg, workload.MustNew("gzip", 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(5_000); err != nil {
		t.Fatal(err)
	}
	if err := chk.Err(); err != nil {
		t.Fatalf("checker flagged the uncorrupted machine: %v", err)
	}
	p.CorruptScoreboardForTest(delta)
	p.Run(10_000) //simlint:allow errflow the deliberately corrupted machine may fail its run; the checker verdict is the observable
	return chk
}

func TestInjectedScoreboardLeakIsCaught(t *testing.T) {
	// A leak larger than the register file must trip the per-cluster
	// capacity bound on the very next cycle.
	chk := corruptedRun(t, pipeline.DefaultConfig().RegsPerCluster+1)
	err := chk.Err()
	if err == nil {
		t.Fatal("injected register leak not caught by any invariant")
	}
	if !strings.Contains(err.Error(), "reg-conservation") {
		t.Fatalf("expected a reg-conservation violation, got: %v", err)
	}
}

func TestInjectedScoreboardDoubleFreeIsCaught(t *testing.T) {
	chk := corruptedRun(t, -(pipeline.DefaultConfig().RegsPerCluster + 1))
	err := chk.Err()
	if err == nil {
		t.Fatal("injected register double-free not caught by any invariant")
	}
	if !strings.Contains(err.Error(), "reg-conservation") {
		t.Fatalf("expected a reg-conservation violation, got: %v", err)
	}
}

func TestInjectedSingleRegisterLeakIsCaught(t *testing.T) {
	// The subtle variant: leak ONE register. The capacity bound only trips
	// when cluster 0 next fills its register file, so this relies on gzip
	// saturating per-cluster capacity (it does, within a few thousand
	// instructions at the default configuration).
	chk := corruptedRun(t, 1)
	if chk.Err() == nil {
		t.Fatal("injected single-register leak not caught by any invariant")
	}
}
