package pipeline

import (
	"testing"

	"clustersim/internal/obs"
	"clustersim/internal/workload"
)

// stepCtrl flips between two cluster counts every interval so observer
// tests exercise real reconfigurations without importing internal/core
// (which would cycle).
type stepCtrl struct {
	n      uint64
	obs    *obs.Observer
	narrow bool
}

func (s *stepCtrl) Name() string                   { return "step-ctrl" }
func (s *stepCtrl) Reset(total int)                { s.n, s.narrow = 0, false }
func (s *stepCtrl) AttachObserver(o *obs.Observer) { s.obs = o }
func (s *stepCtrl) OnCommit(ev CommitEvent) int {
	s.n++
	if s.n%5_000 == 0 {
		s.narrow = !s.narrow
	}
	if s.narrow {
		return 4
	}
	return 16
}

func TestObserverCountersMatchResult(t *testing.T) {
	ring := obs.NewRingSink(1 << 16)
	ob := &obs.Observer{
		Registry:     obs.NewRegistry(),
		Tracer:       ring,
		SamplePeriod: 1_000,
		Series:       &obs.TimeSeries{},
	}
	cfg := DefaultConfig()
	cfg.Observer = ob
	p := MustNew(cfg, workload.MustNew("gzip", 1), &stepCtrl{})
	res := mustRun(t, p, 60_000)

	snap := ob.Registry.Snapshot()
	for _, c := range []struct {
		name string
		want uint64
	}{
		{"pipeline.cycles", res.Cycles},
		{"pipeline.instructions", res.Instructions},
		{"pipeline.fetched", res.Fetched},
		{"pipeline.dispatched", res.Dispatched},
		{"pipeline.redirects", res.Redirects},
		{"pipeline.reconfigs", res.Reconfigs},
		{"pipeline.distant_issued", res.DistantIssued},
		{"pipeline.distant_committed", res.DistantCommitted},
		{"pipeline.reg_transfers", res.RegTransfers},
		{"mem.l1_hits", res.Mem.L1Hits},
		{"mem.l1_misses", res.Mem.L1Misses},
		{"net.transfers", res.Net.Transfers},
		{"net.hops", res.Net.Hops},
	} {
		if got := snap.Counters[c.name]; got != c.want {
			t.Errorf("counter %s = %d, Result says %d", c.name, got, c.want)
		}
	}

	if res.Reconfigs == 0 {
		t.Fatal("step controller produced no reconfigurations")
	}
	var reconfigs, samples int
	for _, ev := range ring.Events() {
		switch ev.Kind {
		case obs.KindReconfig:
			reconfigs++
			if ev.OldActive == ev.NewActive {
				t.Fatalf("no-op reconfig event: %+v", ev)
			}
			if ev.Policy != "step-ctrl" {
				t.Fatalf("reconfig policy %q", ev.Policy)
			}
		case obs.KindSample:
			samples++
		}
	}
	if uint64(reconfigs) != res.Reconfigs {
		t.Errorf("traced %d reconfig events, Result says %d", reconfigs, res.Reconfigs)
	}
	if samples == 0 {
		t.Error("no probe samples despite SamplePeriod")
	}
	if rows := ob.Series.Rows(); len(rows) != samples {
		t.Errorf("series has %d rows, traced %d samples", len(rows), samples)
	} else {
		last := rows[len(rows)-1]
		if last.Cycle == 0 || last.Instructions == 0 {
			t.Errorf("empty series row: %+v", last)
		}
	}
}

func TestObserverAttachReachesController(t *testing.T) {
	ob := &obs.Observer{Registry: obs.NewRegistry()}
	cfg := DefaultConfig()
	cfg.Observer = ob
	ctrl := &stepCtrl{}
	MustNew(cfg, workload.MustNew("gzip", 1), ctrl)
	if ctrl.obs != ob {
		t.Fatal("ObserverAware controller was not attached")
	}
	// Without an observer, no attach happens.
	ctrl2 := &stepCtrl{}
	MustNew(DefaultConfig(), workload.MustNew("gzip", 1), ctrl2)
	if ctrl2.obs != nil {
		t.Fatal("controller attached without an observer")
	}
}

func TestDisabledObserverIsIgnored(t *testing.T) {
	// An Observer with no registry and no tracer is treated as absent.
	cfg := DefaultConfig()
	cfg.Observer = &obs.Observer{SamplePeriod: 100}
	p := MustNew(cfg, workload.MustNew("gzip", 1), nil)
	if p.obs != nil {
		t.Fatal("disabled observer retained")
	}
	mustRun(t, p, 5_000)
}

func TestResultDerivedMetrics(t *testing.T) {
	r := Result{Instructions: 2_000_000, DistantCommitted: 500_000, Reconfigs: 30}
	if got := r.DistantILPFraction(); got != 0.25 {
		t.Fatalf("DistantILPFraction %f", got)
	}
	if got := r.ReconfigsPerMInstr(); got != 15 {
		t.Fatalf("ReconfigsPerMInstr %f", got)
	}
	var zero Result
	if zero.DistantILPFraction() != 0 || zero.ReconfigsPerMInstr() != 0 {
		t.Fatal("zero Result derived metrics")
	}
}

// BenchmarkStepNoObserver is the baseline hot path with the observer hooks
// disabled; BENCH_obs.json records it against the pre-instrumentation
// baseline to verify the hooks are perf-neutral when off (and it must
// report zero allocations per step).
func BenchmarkStepNoObserver(b *testing.B) {
	benchSteps(b, nil)
}

// BenchmarkStepObserverSampling measures the enabled path with a registry,
// ring tracer and 10K-cycle sampling (the default experiment setting).
func BenchmarkStepObserverSampling(b *testing.B) {
	benchSteps(b, &obs.Observer{
		Registry:     obs.NewRegistry(),
		Tracer:       obs.NewRingSink(4096),
		SamplePeriod: 10_000,
	})
}

func benchSteps(b *testing.B, ob *obs.Observer) {
	cfg := DefaultConfig()
	cfg.Observer = ob
	p := MustNew(cfg, workload.MustNew("gzip", 1), nil)
	b.ReportAllocs()
	b.ResetTimer()
	mustRun(b, p, uint64(b.N))
}

// TestSnapshotResultEquivalence: every counter the observer exports must
// equal the corresponding Result field after Stats() (which syncs the
// registry), so dashboards fed from snapshots and analyses fed from Results
// can never disagree.
func TestSnapshotResultEquivalence(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := DefaultConfig()
	cfg.Observer = &obs.Observer{Registry: reg}
	gen := workload.MustNew("swim", 3)
	p, err := New(cfg, gen, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, p, 20_000)
	res := p.Stats() // syncs registry counters to the cumulative totals
	snap := reg.Snapshot()

	equiv := []struct {
		counter string
		want    uint64
	}{
		{"pipeline.cycles", res.Cycles},
		{"pipeline.instructions", res.Instructions},
		{"pipeline.fetched", res.Fetched},
		{"pipeline.dispatched", res.Dispatched},
		{"pipeline.redirects", res.Redirects},
		{"pipeline.reconfigs", res.Reconfigs},
		{"pipeline.distant_issued", res.DistantIssued},
		{"pipeline.distant_committed", res.DistantCommitted},
		{"pipeline.reg_transfers", res.RegTransfers},
		{"mem.l1_hits", res.Mem.L1Hits},
		{"mem.l1_misses", res.Mem.L1Misses},
		{"net.transfers", res.Net.Transfers},
		{"net.hops", res.Net.Hops},
	}
	for _, e := range equiv {
		got, ok := snap.Counters[e.counter]
		if !ok {
			t.Errorf("snapshot missing counter %q", e.counter)
			continue
		}
		if got != e.want {
			t.Errorf("%s = %d, Result says %d", e.counter, got, e.want)
		}
	}
	if res.Instructions == 0 || res.Cycles == 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
}
