package pipeline

// Criticality prediction for steering (§2.1: "our steering heuristic also
// uses a criticality predictor [Fields et al., Tune et al.] to give a
// higher priority to the cluster that produces the critical source
// operand").
//
// Two predictors are available:
//
//   - the default last-arriving heuristic: an operand whose producer is
//     still executing at steering time is treated as critical;
//   - a trained table (Config.CritTable): a PC-indexed array of saturating
//     counters, trained at issue time by observing which operand actually
//     arrived last (Tune et al.'s "last-arriving operand" training rule,
//     the practical approximation of Fields' token-passing model). The
//     table persists across the producer's dynamic instances, so steering
//     can prioritize a critical producer even after it has completed.

// critBits sizes the criticality table (entries, power of two).
const critTableSize = 4096

type critPredictor struct {
	table []uint8
}

func newCritPredictor() *critPredictor {
	return &critPredictor{table: make([]uint8, critTableSize)}
}

func critIndex(pc uint64) int {
	return int((pc>>2)^(pc>>14)) & (critTableSize - 1)
}

// critical reports whether the static instruction at pc is predicted to
// produce critical values.
func (c *critPredictor) critical(pc uint64) bool {
	return c.table[critIndex(pc)] >= 2
}

// train records that the producer at lastPC supplied the last-arriving
// operand of some consumer while the producer at otherPC (if any) did not.
func (c *critPredictor) train(lastPC uint64, hasOther bool, otherPC uint64) {
	i := critIndex(lastPC)
	if c.table[i] < 3 {
		c.table[i]++
	}
	if hasOther {
		j := critIndex(otherPC)
		if c.table[j] > 0 {
			c.table[j]--
		}
	}
}

// trainCriticality observes an issuing instruction's operand arrivals and
// trains the table with the last-arriving producer.
func (p *Processor) trainCriticality(u *uop) {
	if p.crit == nil {
		return
	}
	d1, d2 := u.in.SrcDist1, u.in.SrcDist2
	if d1 == 0 || d2 == 0 || u.src1At == u.src2At {
		return // need two in-flight operands with distinct arrivals
	}
	lastDist, otherDist := d1, d2
	if u.src2At > u.src1At {
		lastDist, otherDist = d2, d1
	}
	lastSeq := u.seq - uint64(lastDist)
	otherSeq := u.seq - uint64(otherDist)
	if lastSeq < p.headSeq || otherSeq < p.headSeq {
		return
	}
	p.crit.train(p.at(lastSeq).in.PC, true, p.at(otherSeq).in.PC)
}

// predictedCritical reports whether the in-flight producer dist back from
// seq is predicted critical, under whichever predictor is configured.
func (p *Processor) predictedCritical(seq uint64, dist uint32) bool {
	if p.crit != nil {
		pseq := seq - uint64(dist)
		if pseq < p.headSeq || pseq >= p.tailSeq {
			return false
		}
		return p.crit.critical(p.at(pseq).in.PC)
	}
	return p.producerUnfinished(seq, dist)
}
