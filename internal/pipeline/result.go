package pipeline

import (
	"fmt"

	"clustersim/internal/bpred"
	"clustersim/internal/interconnect"
	"clustersim/internal/mem"
)

// Result holds cumulative statistics for a run.
type Result struct {
	// Benchmark and Policy identify the run.
	Benchmark string
	Policy    string

	// Cycles and Instructions are the simulated totals.
	Cycles       uint64
	Instructions uint64

	// Fetched and Dispatched count front-end throughput.
	Fetched    uint64
	Dispatched uint64

	// Redirects counts committed control transfers that redirected the
	// front-end (branch mispredictions experienced).
	Redirects uint64

	// DistantIssued and DistantCommitted count instructions issued at
	// least DistantDepth behind the ROB head (§4.3's distant-ILP metric).
	DistantIssued    uint64
	DistantCommitted uint64

	// Reconfigs counts applied active-cluster changes; ActiveSum is the
	// per-cycle sum of active clusters (for the §4.2 average).
	Reconfigs uint64
	ActiveSum uint64

	// RegTransfers/RegLatencySum describe inter-cluster register
	// forwarding (the paper quotes a 4.1-cycle average on the ring).
	RegTransfers  uint64
	RegLatencySum uint64

	// StoreBroadcasts counts decentralized store-address broadcasts;
	// BankMispredicts counts memory operations steered to the wrong
	// bank's cluster; LoadForwards counts store-to-load forwards.
	StoreBroadcasts uint64
	BankMispredicts uint64
	LoadForwards    uint64

	// ICacheMisses and TLBMisses count front-end line fills and data
	// page walks.
	ICacheMisses uint64
	TLBMisses    uint64

	// Subsystem statistics.
	Mem    mem.Stats
	Net    interconnect.Stats
	Branch bpred.Stats
	Bank   bpred.Stats
}

// IPC returns committed instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// AvgActiveClusters returns the mean number of active clusters per cycle.
func (r Result) AvgActiveClusters() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.ActiveSum) / float64(r.Cycles)
}

// AvgRegCommLatency returns the mean inter-cluster register transfer
// latency in cycles.
func (r Result) AvgRegCommLatency() float64 {
	if r.RegTransfers == 0 {
		return 0
	}
	return float64(r.RegLatencySum) / float64(r.RegTransfers)
}

// DistantILPFraction returns the fraction of committed instructions that
// issued at least DistantDepth behind the ROB head — the §4.3 degree of
// distant ILP.
func (r Result) DistantILPFraction() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.DistantCommitted) / float64(r.Instructions)
}

// ReconfigsPerMInstr returns applied reconfigurations per million committed
// instructions — the §4.2 reconfiguration-rate every experiment reports.
func (r Result) ReconfigsPerMInstr() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return 1e6 * float64(r.Reconfigs) / float64(r.Instructions)
}

// MispredictInterval returns committed instructions per front-end redirect.
func (r Result) MispredictInterval() float64 {
	if r.Redirects == 0 {
		return float64(r.Instructions)
	}
	return float64(r.Instructions) / float64(r.Redirects)
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s: IPC %.3f (%d instrs, %d cycles, %.1f avg clusters, %d reconfigs)",
		r.Benchmark, r.Policy, r.IPC(), r.Instructions, r.Cycles, r.AvgActiveClusters(), r.Reconfigs)
}
