package pipeline

import (
	"clustersim/internal/interconnect"
	"clustersim/internal/mem"
)

// Checker observes a read-only view of the machine at the end of every
// simulated cycle. Implementations validate cycle-level invariants (package
// internal/check provides the standard set); they must not mutate the view
// and must not retain it or its slices across calls — the processor reuses
// one view for the whole run so a checked simulation never allocates on the
// hot path.
//
// A nil Config.Checker disables checking at the cost of a single pointer
// test per cycle, keeping unchecked runs perf-neutral.
type Checker interface {
	CheckCycle(v *MachineView)
}

// MachineView is the per-cycle machine state exposed to a Checker. All
// per-cluster slices are indexed by cluster and have Config.Clusters
// entries; they are refreshed in place every cycle.
type MachineView struct {
	// Cycle and Committed are the current cycle and cumulative commits.
	Cycle     uint64
	Committed uint64

	// HeadSeq, TailSeq and FetchSeq delimit the in-flight window:
	// HeadSeq is the oldest in-flight seq, TailSeq the next to dispatch,
	// FetchSeq the next to fetch. TailSeq-HeadSeq is the ROB occupancy.
	HeadSeq  uint64
	TailSeq  uint64
	FetchSeq uint64

	// Active is the current active-cluster count; Draining reports an
	// in-progress decentralized reconfiguration drain.
	Active   int
	Draining bool

	// FetchQueueLen is the fetch-queue occupancy.
	FetchQueueLen int

	// IQInt and IQFP are per-cluster issue-queue occupancies; IntRegs and
	// FPRegs are per-cluster physical registers in use; LSQ is the
	// per-cluster LSQ occupancy (loads plus store dummies, decentralized
	// model). LSQCentral is the centralized LSQ occupancy.
	IQInt, IQFP     []int
	IntRegs, FPRegs []int
	LSQ             []int
	LSQCentral      int

	// Stats points at the live cumulative pipeline counters.
	Stats *Result
	// MemStats and NetStats are this cycle's cumulative subsystem
	// statistics.
	MemStats mem.Stats
	NetStats interconnect.Stats

	// Config is the machine configuration; NetDiameter the interconnect's
	// worst-case routed hop count (both fixed for the run).
	Config      *Config
	NetDiameter int
}

// initCheck wires the checker into the processor, pre-sizing the view's
// per-cluster slices so checked cycles never allocate.
func (p *Processor) initCheck(chk Checker) {
	p.chk = chk
	if chk == nil {
		return
	}
	n := p.cfg.Clusters
	p.view = MachineView{
		IQInt:       make([]int, n),
		IQFP:        make([]int, n),
		IntRegs:     make([]int, n),
		FPRegs:      make([]int, n),
		LSQ:         make([]int, n),
		Stats:       &p.stats,
		Config:      &p.cfg,
		NetDiameter: p.net.Diameter(),
	}
}

// checkCycle refreshes the view and hands it to the checker. Called from
// step() only when a checker is attached.
func (p *Processor) checkCycle() {
	v := &p.view
	v.Cycle = p.cycle
	v.Committed = p.committed
	v.HeadSeq = p.headSeq
	v.TailSeq = p.tailSeq
	v.FetchSeq = p.fetchSeq
	v.Active = p.active
	v.Draining = p.draining
	v.FetchQueueLen = p.fqLen
	v.LSQCentral = p.lsqTotal
	for i := range p.clusters {
		cs := &p.clusters[i]
		v.IQInt[i] = cs.nInt
		v.IQFP[i] = cs.nFP
		v.IntRegs[i] = cs.intRegs
		v.FPRegs[i] = cs.fpRegs
		v.LSQ[i] = cs.lsq
	}
	v.MemStats = p.memsys.Stats()
	v.NetStats = p.net.Stats()
	p.chk.CheckCycle(v)
}
