// Command instability performs the paper's §4.1 phase-stability analysis:
// it records a 10K-interval metric trace for each benchmark and prints the
// instability factor at a range of interval lengths, plus the minimum
// interval length with <5% instability (paper Table 4).
package main

import (
	"flag"
	"fmt"
	"strings"

	"clustersim"
	"clustersim/internal/stats"
)

func main() {
	benches := flag.String("bench", "", "comma-separated benchmarks (default: all)")
	n := flag.Uint64("n", 2_000_000, "instructions to trace per benchmark")
	base := flag.Uint64("base", 10_000, "base interval length")
	seed := flag.Uint64("seed", 1, "workload seed")
	flag.Parse()

	names := clustersim.Benchmarks()
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}
	mults := []int{1, 2, 4, 8, 16, 32, 64, 128}

	fmt.Printf("%-9s", "bench")
	for _, m := range mults {
		fmt.Printf("%9s", fmt.Sprintf("%dK", uint64(m)**base/1000))
	}
	fmt.Printf("%12s\n", "min<5%")

	for _, name := range names {
		rec := clustersim.NewRecorder(*base)
		if _, err := clustersim.Run(name, *seed, clustersim.DefaultConfig(), rec, *n); err != nil {
			fmt.Println(err)
			return
		}
		trace := rec.Intervals()
		th := stats.DefaultThresholds()
		fmt.Printf("%-9s", name)
		for _, m := range mults {
			fmt.Printf("%8.1f%%", stats.Instability(stats.Aggregate(trace, m), th))
		}
		minLen, _ := stats.MinStableInterval(trace, *base, mults, 5, th)
		fmt.Printf("%11dK\n", minLen/1000)
	}
}
