// Command workloads characterizes the synthetic benchmarks against the
// published values they substitute for (DESIGN.md §2): instruction mix,
// monolithic IPC vs. Table 3, branch-mispredict interval vs. Table 3, and
// the distant-ILP fraction that drives the adaptive controllers.
//
// Usage:
//
//	workloads                  # all nine benchmarks
//	workloads -bench gzip -n 2000000
//	workloads -parallel 4      # characterize benchmarks concurrently
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"clustersim"
	"clustersim/internal/runner"
)

func main() {
	benches := flag.String("bench", "", "comma-separated benchmarks (default: all)")
	n := flag.Uint64("n", 1_000_000, "instructions per benchmark")
	seed := flag.Uint64("seed", 1, "workload seed")
	parallel := flag.Int("parallel", 0, "worker-pool width (0 = GOMAXPROCS)")
	flag.Parse()

	names := clustersim.Benchmarks()
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}

	// Two runs per benchmark (monolithic and 16-cluster), submitted as
	// one batch; rows print in order regardless of execution order.
	var reqs []runner.Request
	at := make(map[string]int, len(names))
	for _, name := range names {
		if _, ok := clustersim.Paper(name); !ok {
			continue
		}
		at[name] = len(reqs)
		reqs = append(reqs, runner.Request{
			ID: "workloads-mono", Bench: name, Seed: *seed, Window: *n,
			Config: clustersim.MonolithicConfig(),
		})
		reqs = append(reqs, runner.Request{
			ID: "workloads-wide", Bench: name, Seed: *seed, Window: *n,
			Config: clustersim.DefaultConfig(),
		})
	}
	rs, err := runner.New(*parallel).RunAll(reqs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "workloads: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%-8s %-11s %7s %7s %9s %9s %7s %7s %8s\n",
		"bench", "suite", "IPC", "paper", "mispred", "paper", "br%", "mem%", "distant%")
	for _, name := range names {
		pd, ok := clustersim.Paper(name)
		if !ok {
			fmt.Printf("%-8s unknown benchmark\n", name)
			continue
		}
		i := at[name]
		mono, wide := rs[i], rs[i+1]
		branches := float64(wide.Branch.Lookups) / float64(wide.Instructions)
		mems := float64(wide.Mem.Loads+wide.Mem.Stores) / float64(wide.Instructions)
		distant := float64(wide.DistantCommitted) / float64(wide.Instructions)
		fmt.Printf("%-8s %-11s %7.2f %7.2f %9.0f %9.0f %6.1f%% %6.1f%% %7.1f%%\n",
			name, pd.Suite, mono.IPC(), pd.BaseIPC,
			mono.MispredictInterval(), pd.MispredictInterval,
			100*branches, 100*mems, 100*distant)
	}
	fmt.Println("\nIPC and mispred measured on the monolithic machine; mix and distant")
	fmt.Println("fraction on the 16-cluster ring machine (distant = issued >=120")
	fmt.Println("behind the ROB head, the signal the adaptive controllers use).")
}
