// Command workloads characterizes the synthetic benchmarks against the
// published values they substitute for (DESIGN.md §2): instruction mix,
// monolithic IPC vs. Table 3, branch-mispredict interval vs. Table 3, and
// the distant-ILP fraction that drives the adaptive controllers.
//
// Usage:
//
//	workloads                  # all nine benchmarks
//	workloads -bench gzip -n 2000000
//	workloads -parallel 4      # characterize benchmarks concurrently
//	workloads -csv             # machine-readable output
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"clustersim"
	"clustersim/internal/runner"
)

// options parameterizes one characterization sweep.
type options struct {
	names    []string
	window   uint64
	seed     uint64
	parallel int
	csv      bool
}

// row is one benchmark's measured-vs-published characterization.
type row struct {
	name, suite             string
	ipc, paperIPC           float64
	mispred, paperMispred   float64
	branches, mems, distant float64
}

// characterize runs the sweep and returns one row per known benchmark (rows
// follow the requested order; unknown names are skipped with a note on w).
func characterize(opt options, w io.Writer) ([]row, error) {
	// Two runs per benchmark (monolithic and 16-cluster), submitted as
	// one batch; rows print in order regardless of execution order.
	var reqs []runner.Request
	at := make(map[string]int, len(opt.names))
	for _, name := range opt.names {
		if _, ok := clustersim.Paper(name); !ok {
			fmt.Fprintf(w, "%-8s unknown benchmark\n", name)
			continue
		}
		at[name] = len(reqs)
		reqs = append(reqs, runner.Request{
			ID: "workloads-mono", Bench: name, Seed: opt.seed, Window: opt.window,
			Config: clustersim.MonolithicConfig(),
		})
		reqs = append(reqs, runner.Request{
			ID: "workloads-wide", Bench: name, Seed: opt.seed, Window: opt.window,
			Config: clustersim.DefaultConfig(),
		})
	}
	rs, err := runner.New(opt.parallel).RunAll(reqs)
	if err != nil {
		return nil, err
	}

	var rows []row
	for _, name := range opt.names {
		i, ok := at[name]
		if !ok {
			continue
		}
		pd, _ := clustersim.Paper(name)
		mono, wide := rs[i], rs[i+1]
		rows = append(rows, row{
			name:         name,
			suite:        pd.Suite,
			ipc:          mono.IPC(),
			paperIPC:     pd.BaseIPC,
			mispred:      mono.MispredictInterval(),
			paperMispred: pd.MispredictInterval,
			branches:     float64(wide.Branch.Lookups) / float64(wide.Instructions),
			mems:         float64(wide.Mem.Loads+wide.Mem.Stores) / float64(wide.Instructions),
			distant:      float64(wide.DistantCommitted) / float64(wide.Instructions),
		})
	}
	return rows, nil
}

// writeTable prints the human-readable characterization table.
func writeTable(w io.Writer, rows []row) {
	fmt.Fprintf(w, "%-8s %-11s %7s %7s %9s %9s %7s %7s %8s\n",
		"bench", "suite", "IPC", "paper", "mispred", "paper", "br%", "mem%", "distant%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-11s %7.2f %7.2f %9.0f %9.0f %6.1f%% %6.1f%% %7.1f%%\n",
			r.name, r.suite, r.ipc, r.paperIPC, r.mispred, r.paperMispred,
			100*r.branches, 100*r.mems, 100*r.distant)
	}
	fmt.Fprintln(w, "\nIPC and mispred measured on the monolithic machine; mix and distant")
	fmt.Fprintln(w, "fraction on the 16-cluster ring machine (distant = issued >=120")
	fmt.Fprintln(w, "behind the ROB head, the signal the adaptive controllers use).")
}

// writeCSV prints the machine-readable characterization.
func writeCSV(w io.Writer, rows []row) {
	fmt.Fprintln(w, "bench,suite,ipc,paper_ipc,mispred_interval,paper_mispred_interval,branch_frac,mem_frac,distant_frac")
	for _, r := range rows {
		fmt.Fprintf(w, "%s,%s,%.4f,%.2f,%.1f,%.0f,%.4f,%.4f,%.4f\n",
			r.name, strings.ReplaceAll(r.suite, ",", ";"), r.ipc, r.paperIPC,
			r.mispred, r.paperMispred, r.branches, r.mems, r.distant)
	}
}

func main() {
	benches := flag.String("bench", "", "comma-separated benchmarks (default: all)")
	n := flag.Uint64("n", 1_000_000, "instructions per benchmark")
	seed := flag.Uint64("seed", 1, "workload seed")
	parallel := flag.Int("parallel", 0, "worker-pool width (0 = GOMAXPROCS)")
	csv := flag.Bool("csv", false, "emit machine-readable CSV instead of the table")
	flag.Parse()

	names := clustersim.Benchmarks()
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}

	rows, err := characterize(options{
		names: names, window: *n, seed: *seed, parallel: *parallel, csv: *csv,
	}, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "workloads: %v\n", err)
		os.Exit(1)
	}
	if *csv {
		writeCSV(os.Stdout, rows)
	} else {
		writeTable(os.Stdout, rows)
	}
}
