package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// tinyOptions is the smoke sweep: two benchmarks, a small window, one
// worker — fast, and fully deterministic, so its CSV can be golden-tested
// byte for byte.
func tinyOptions() options {
	return options{
		names:    []string{"gzip", "swim"},
		window:   20_000,
		seed:     1,
		parallel: 1,
	}
}

// TestCharacterizeGoldenCSV pins the CSV characterization of a tiny sweep.
// A diff here means either an intended simulator change (re-bless with
// `go test ./cmd/workloads -run Golden -update`) or an unintended
// determinism break.
func TestCharacterizeGoldenCSV(t *testing.T) {
	var note bytes.Buffer
	rows, err := characterize(tinyOptions(), &note)
	if err != nil {
		t.Fatal(err)
	}
	if note.Len() != 0 {
		t.Fatalf("unexpected notes: %q", note.String())
	}
	var got bytes.Buffer
	writeCSV(&got, rows)

	golden := filepath.Join("testdata", "tiny_sweep.csv")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to bless)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("CSV drifted from golden:\n--- got ---\n%s--- want ---\n%s", got.String(), want)
	}
}

// TestCharacterizeTable sanity-checks the human-readable rendering.
func TestCharacterizeTable(t *testing.T) {
	rows, err := characterize(tinyOptions(), os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	writeTable(&out, rows)
	s := out.String()
	for _, want := range []string{"bench", "gzip", "swim", "monolithic machine"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
}

// TestCharacterizeUnknownBench: unknown names are reported, known ones still
// characterized.
func TestCharacterizeUnknownBench(t *testing.T) {
	opt := tinyOptions()
	opt.names = []string{"nosuch", "gzip"}
	var note bytes.Buffer
	rows, err := characterize(opt, &note)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(note.String(), "nosuch") {
		t.Errorf("unknown benchmark not reported: %q", note.String())
	}
	if len(rows) != 1 || rows[0].name != "gzip" {
		t.Fatalf("expected one gzip row, got %+v", rows)
	}
}
