package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBenchdiff compiles the CLI once per test into a temp dir.
func buildBenchdiff(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := filepath.Join(t.TempDir(), "benchdiff")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldRun = `BenchmarkFig3-8        	      10	 100000000 ns/op	 50000 B/op	     500 allocs/op
BenchmarkFig3-8        	      10	 102000000 ns/op	 50000 B/op	     500 allocs/op
BenchmarkFig3-8        	      10	  98000000 ns/op	 50000 B/op	     500 allocs/op
BenchmarkTable4-8      	      10	 200000000 ns/op	 80000 B/op	     800 allocs/op
PASS
`

// newRegressed injects a +25% ns/op regression into Fig3 (Table4 unchanged).
const newRegressed = `BenchmarkFig3-8        	      10	 125000000 ns/op	 50000 B/op	     500 allocs/op
BenchmarkFig3-8        	      10	 125000000 ns/op	 50000 B/op	     500 allocs/op
BenchmarkFig3-8        	      10	 125000000 ns/op	 50000 B/op	     500 allocs/op
BenchmarkTable4-8      	      10	 201000000 ns/op	 80000 B/op	     800 allocs/op
PASS
`

// TestDetectsInjectedRegression is the gate's own acceptance test: a
// synthetic ≥20% regression must flag the offending benchmark and exit
// nonzero.
func TestDetectsInjectedRegression(t *testing.T) {
	bin := buildBenchdiff(t)
	oldPath := writeTemp(t, "old.txt", oldRun)
	newPath := writeTemp(t, "new.txt", newRegressed)

	out, err := exec.Command(bin, "-metric", "ns/op", "-threshold", "10", oldPath, newPath).CombinedOutput()
	if err == nil {
		t.Fatalf("exit 0 despite +25%% regression:\n%s", out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1, got %v:\n%s", err, out)
	}
	if !strings.Contains(string(out), "REGRESSION") || !strings.Contains(string(out), "Fig3") {
		t.Fatalf("regression not named:\n%s", out)
	}
	if strings.Contains(string(out), "Table4  ") && strings.Contains(string(out), "Table4") &&
		strings.Count(string(out), "REGRESSION") != 1 {
		t.Fatalf("unchanged benchmark flagged:\n%s", out)
	}
}

// TestPassesWithinThreshold: the same inputs clear a generous threshold.
func TestPassesWithinThreshold(t *testing.T) {
	bin := buildBenchdiff(t)
	oldPath := writeTemp(t, "old.txt", oldRun)
	newPath := writeTemp(t, "new.txt", newRegressed)

	out, err := exec.Command(bin, "-metric", "ns/op", "-threshold", "30", oldPath, newPath).CombinedOutput()
	if err != nil {
		t.Fatalf("exit nonzero within threshold: %v\n%s", err, out)
	}

	// allocs/op did not move at all — the CI gate's metric stays green
	// even while ns/op regresses.
	out, err = exec.Command(bin, "-metric", "allocs/op", "-threshold", "10", oldPath, newPath).CombinedOutput()
	if err != nil {
		t.Fatalf("allocs/op gate failed on unchanged allocations: %v\n%s", err, out)
	}
}

// TestWriteBaselineAndCompare: a run is frozen into baseline JSON, then a
// later text run compares against it (the CI workflow shape).
func TestWriteBaselineAndCompare(t *testing.T) {
	bin := buildBenchdiff(t)
	oldPath := writeTemp(t, "old.txt", oldRun)
	basePath := filepath.Join(t.TempDir(), "baseline.json")

	if out, err := exec.Command(bin, "-write-baseline", basePath, oldPath).CombinedOutput(); err != nil {
		t.Fatalf("write-baseline: %v\n%s", err, out)
	}
	newPath := writeTemp(t, "new.txt", newRegressed)
	out, err := exec.Command(bin, "-metric", "ns/op", "-threshold", "10", basePath, newPath).CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("baseline comparison: want exit 1, got %v:\n%s", err, out)
	}
}

// TestUsageErrors: bad invocations exit 2, never 1 (so CI can tell "gate
// tripped" from "gate misconfigured").
func TestUsageErrors(t *testing.T) {
	bin := buildBenchdiff(t)
	for _, args := range [][]string{
		{},
		{"one-arg-only"},
		{"/nonexistent/a", "/nonexistent/b"},
	} {
		err := exec.Command(bin, args...).Run()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Errorf("args %v: want exit 2, got %v", args, err)
		}
	}
}
