// Command benchdiff compares two benchmark runs and fails on regressions —
// the repository's perf-regression gate.
//
// Usage:
//
//	go test -bench . -count 5 > new.txt
//	benchdiff [-metric ns/op] [-threshold 10] OLD NEW
//	benchdiff -write-baseline BENCH_new.json NEW
//
// OLD and NEW are each either raw `go test -bench` output or benchdiff/v1
// baseline JSON (bare, or embedded under a "baseline" key in a committed
// BENCH_*.json artifact). Medians per benchmark are compared in a
// benchstat-style table; any benchmark whose chosen metric regresses by more
// than -threshold percent makes benchdiff exit 1, so CI can gate on it:
//
//	go run ./cmd/benchdiff -metric allocs/op -threshold 10 BENCH_telemetry.json new.txt
//
// Gate CI on allocs/op, not ns/op: allocation counts are deterministic and
// machine-independent, while wall-clock baselines recorded on one machine do
// not transfer to another (compare ns/op locally, on the same box).
//
// Exit status: 0 no regression; 1 regression beyond threshold; 2 usage or
// input error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"clustersim/internal/benchfmt"
)

func main() {
	metric := flag.String("metric", "ns/op", "unit to compare (ns/op | B/op | allocs/op | ...)")
	threshold := flag.Float64("threshold", 5, "regression threshold in percent")
	writeBaseline := flag.String("write-baseline", "", "write NEW as benchdiff/v1 baseline JSON to this path and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [flags] OLD NEW\n       benchdiff -write-baseline OUT NEW\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *writeBaseline != "" {
		if flag.NArg() != 1 {
			flag.Usage()
			os.Exit(2)
		}
		b, err := benchfmt.ReadFile(flag.Arg(0))
		if err != nil {
			fatal("%v", err)
		}
		if err := b.WriteFile(*writeBaseline); err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "benchdiff: wrote %d benchmark(s) to %s\n", len(b.Metrics), *writeBaseline)
		return
	}

	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	old, err := benchfmt.ReadFile(flag.Arg(0))
	if err != nil {
		fatal("%v", err)
	}
	new, err := benchfmt.ReadFile(flag.Arg(1))
	if err != nil {
		fatal("%v", err)
	}

	deltas, onlyOld, onlyNew := benchfmt.Diff(old, new, *metric)
	if len(deltas) == 0 {
		fatal("no benchmark appears in both inputs with metric %q", *metric)
	}

	width := len("benchmark")
	for _, d := range deltas {
		if len(d.Name) > width {
			width = len(d.Name)
		}
	}
	fmt.Printf("metric: %s   threshold: ±%g%%\n", *metric, *threshold)
	fmt.Printf("%-*s  %14s  %14s  %8s\n", width, "benchmark", "old", "new", "delta")
	regressed := 0
	for _, d := range deltas {
		mark := ""
		if d.Regressed(*metric, *threshold) {
			mark = "  REGRESSION"
			regressed++
		}
		fmt.Printf("%-*s  %14s  %14s  %+7.1f%%%s\n",
			width, d.Name, fmtValue(d.Old), fmtValue(d.New), d.Pct, mark)
	}
	if len(onlyOld) > 0 {
		fmt.Printf("only in old: %s\n", strings.Join(onlyOld, ", "))
	}
	if len(onlyNew) > 0 {
		fmt.Printf("only in new: %s\n", strings.Join(onlyNew, ", "))
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed beyond %g%% on %s\n",
			regressed, *threshold, *metric)
		os.Exit(1)
	}
}

// fmtValue renders a metric value compactly: integers stay integral, large
// values keep their magnitude readable.
func fmtValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(2)
}
