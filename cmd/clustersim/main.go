// Command clustersim runs one benchmark on one processor configuration and
// prints the run statistics.
//
// Usage:
//
//	clustersim -bench gzip -policy explore -n 1000000
//	clustersim -bench swim -policy static -clusters 8 -cache dist -topo grid
//	clustersim -bench gzip -trace out.jsonl -metrics m.json
//	clustersim -bench gzip -trace gzip.trace -trace-format chrome
//	clustersim -bench parser -n 100000000 -serve :8080 -pprof
//	clustersim -bench gzip -phases   # wall-clock phase attribution table
//	clustersim -bench gzip -legacy-stepper   # seed per-cycle scan stepper
//	clustersim -bench gzip -check    # validate cycle-level invariants
//	clustersim -spec specs/gzip.json -n 1000000       # declarative workload
//	clustersim -bench gzip -record-trace gzip.ctrace  # record, then exit
//	clustersim -replay-trace gzip.ctrace -n 1000000   # replay a recording
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"clustersim"
)

func main() {
	bench := flag.String("bench", "gzip", "benchmark name (-list to enumerate)")
	list := flag.Bool("list", false, "list benchmarks and exit")
	policy := flag.String("policy", "explore", "static | explore | dilp | fg | fgcr")
	clusters := flag.Int("clusters", 16, "active clusters for -policy static")
	n := flag.Uint64("n", 1_000_000, "instructions to simulate")
	seed := flag.Uint64("seed", 1, "workload seed")
	cache := flag.String("cache", "central", "central | dist")
	topo := flag.String("topo", "ring", "ring | grid")
	interval := flag.Uint64("interval", 0, "interval length for dilp (0 = paper default)")
	trace := flag.String("trace", "", "write a structured event trace to this file")
	traceFormat := flag.String("trace-format", "jsonl", "trace file format: jsonl | chrome")
	metrics := flag.String("metrics", "", "write a metrics snapshot (JSON) to this file")
	sample := flag.Uint64("sample", 10_000, "probe sampling period in cycles (0 disables)")
	serve := flag.String("serve", "", "serve live metrics over HTTP on this address (e.g. :8080)")
	servePprof := flag.Bool("pprof", false, "with -serve, also expose Go profiling endpoints under /debug/pprof/")
	phases := flag.Bool("phases", false, "attribute simulator wall time to pipeline phases and print the table")
	phaseSample := flag.Uint64("phase-sample", 0, "phase-attribution sampling period in cycles (0 = default, 1 in 64)")
	checkInv := flag.Bool("check", false, "validate cycle-level invariants during the run (exit 1 on violation)")
	legacyStepper := flag.Bool("legacy-stepper", false, "use the per-cycle scan stepper instead of the event-driven one (differential oracle / perf baseline)")
	specFile := flag.String("spec", "", "run a declarative workload spec (JSON file) instead of -bench")
	recordTrace := flag.String("record-trace", "", "record the workload's instruction stream (n + headroom instructions) to this file and exit without simulating")
	replayTrace := flag.String("replay-trace", "", "replay a recorded instruction stream instead of generating one")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(clustersim.Benchmarks(), "\n"))
		return
	}

	// buildGen constructs the live workload (-spec, else -bench) and the
	// identity a recording of it would carry.
	buildGen := func() (clustersim.Generator, clustersim.TraceMeta, error) {
		if *specFile != "" {
			s, err := clustersim.LoadWorkloadSpec(*specFile)
			if err != nil {
				return nil, clustersim.TraceMeta{}, err
			}
			gen, err := clustersim.CompileWorkloadSpec(s, *seed)
			if err != nil {
				return nil, clustersim.TraceMeta{}, err
			}
			fp, err := s.Fingerprint()
			if err != nil {
				return nil, clustersim.TraceMeta{}, err
			}
			return gen, clustersim.TraceMeta{
				Name: s.Name, SourceKind: clustersim.TraceSourceSpec,
				SourceID: s.Name, SourceFP: fp, Seed: *seed,
			}, nil
		}
		gen, err := clustersim.NewWorkload(*bench, *seed)
		if err != nil {
			return nil, clustersim.TraceMeta{}, err
		}
		return gen, clustersim.TraceMeta{
			Name: *bench, SourceKind: clustersim.TraceSourceBench,
			SourceID: *bench, Seed: *seed,
		}, nil
	}

	if *recordTrace != "" {
		if *replayTrace != "" {
			fatal("-record-trace and -replay-trace are mutually exclusive")
		}
		gen, meta, err := buildGen()
		if err != nil {
			fatal("%v", err)
		}
		// Record past -n so the same file replays under any policy: deeper
		// fetch-ahead consumes more of the stream than the commit window.
		t := clustersim.RecordTrace(gen, *n+clustersim.DefaultTraceHeadroom, meta)
		if err := clustersim.WriteTraceFile(*recordTrace, t); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("recorded %d instructions of %s to %s\n", len(t.Instrs), meta.Name, *recordTrace)
		return
	}

	cfg := clustersim.DefaultConfig()
	cfg.LegacyStepper = *legacyStepper
	switch *cache {
	case "central":
	case "dist":
		cfg.Cache = clustersim.DecentralizedCache
	default:
		fatal("unknown -cache %q", *cache)
	}
	switch *topo {
	case "ring":
	case "grid":
		cfg.Topology = clustersim.GridTopology
	default:
		fatal("unknown -topo %q", *topo)
	}

	var ctrl clustersim.Controller
	switch *policy {
	case "static":
		ctrl = clustersim.NewStatic(*clusters)
	case "explore":
		ctrl = clustersim.NewExplore(clustersim.ExploreConfig{})
	case "dilp":
		ctrl = clustersim.NewDistantILP(clustersim.DistantILPConfig{Interval: *interval})
	case "fg":
		ctrl = clustersim.NewFineGrain(clustersim.FineGrainConfig{})
	case "fgcr":
		ctrl = clustersim.NewFineGrain(clustersim.FineGrainConfig{CallReturnOnly: true})
	default:
		fatal("unknown -policy %q", *policy)
	}

	// Observability: any of -trace, -metrics or -serve attaches an
	// observer; without them the simulation runs uninstrumented. Output
	// files are created up front so a bad path fails before a long run,
	// not after it.
	var ob *clustersim.Observer
	var closeTrace func() error
	var metricsFile *os.File
	if *trace != "" || *metrics != "" || *serve != "" {
		ob = &clustersim.Observer{SamplePeriod: *sample}
		if *metrics != "" || *serve != "" {
			ob.Registry = clustersim.NewMetricsRegistry()
		}
		if *metrics != "" {
			f, err := os.Create(*metrics)
			if err != nil {
				fatal("%v", err)
			}
			metricsFile = f
		}
		if *trace != "" {
			if *traceFormat != "jsonl" && *traceFormat != "chrome" {
				fatal("unknown -trace-format %q", *traceFormat)
			}
			f, err := os.Create(*trace)
			if err != nil {
				fatal("%v", err)
			}
			if *traceFormat == "jsonl" {
				s := clustersim.NewJSONLSink(f)
				ob.Tracer, closeTrace = s, s.Close
			} else {
				s := clustersim.NewChromeSink(f)
				ob.Tracer, closeTrace = s, s.Close
			}
		}
		if *serve != "" {
			serveFn := clustersim.ServeMetrics
			endpoints := "/metrics, /metrics.csv, /debug/vars"
			if *servePprof {
				serveFn = clustersim.ServeMetricsPprof
				endpoints += ", /debug/pprof/"
			}
			addr, closeServe, err := serveFn(*serve, ob.Registry)
			if err != nil {
				fatal("%v", err)
			}
			defer closeServe()
			// A served registry also reports the simulator process's own
			// runtime health alongside the simulated machine.
			stopSampler := clustersim.StartRuntimeSampler(ob.Registry, 0)
			defer stopSampler()
			fmt.Fprintf(os.Stderr, "serving metrics on %s (%s)\n", addr, endpoints)
		}
		cfg.Observer = ob
	}

	var ptimer *clustersim.PhaseTimer
	if *phases {
		ptimer = clustersim.NewPhaseTimer(*phaseSample)
		cfg.Phases = ptimer
	}

	var chk *clustersim.InvariantChecker
	if *checkInv {
		chk = clustersim.NewInvariantChecker()
		cfg.Checker = chk
	}

	var res clustersim.Result
	var err error
	if *specFile != "" || *replayTrace != "" {
		var gen clustersim.Generator
		if *replayTrace != "" {
			t, terr := clustersim.ReadTraceFile(*replayTrace)
			if terr != nil {
				fatal("%v", terr)
			}
			gen = t.Replayer()
		} else if gen, _, err = buildGen(); err != nil {
			fatal("%v", err)
		}
		p, perr := clustersim.NewProcessor(cfg, gen, ctrl)
		if perr != nil {
			fatal("%v", perr)
		}
		res, err = runDirect(p, *n)
	} else {
		res, err = clustersim.Run(*bench, *seed, cfg, ctrl, *n)
	}
	if err != nil {
		fatal("%v", err)
	}

	if closeTrace != nil {
		if err := closeTrace(); err != nil {
			fatal("closing trace: %v", err)
		}
	}
	if metricsFile != nil {
		if err := ob.Registry.Snapshot().WriteJSON(metricsFile); err != nil {
			fatal("writing metrics: %v", err)
		}
		if err := metricsFile.Close(); err != nil {
			fatal("closing metrics: %v", err)
		}
	}

	fmt.Printf("benchmark        %s\n", res.Benchmark)
	fmt.Printf("policy           %s\n", res.Policy)
	fmt.Printf("instructions     %d\n", res.Instructions)
	fmt.Printf("cycles           %d\n", res.Cycles)
	fmt.Printf("IPC              %.3f\n", res.IPC())
	fmt.Printf("avg clusters     %.2f of %d\n", res.AvgActiveClusters(), cfg.Clusters)
	fmt.Printf("reconfigs        %d (%.1f/M instrs)\n", res.Reconfigs, res.ReconfigsPerMInstr())
	fmt.Printf("mispred interval %.0f instructions\n", res.MispredictInterval())
	fmt.Printf("reg transfers    %d (avg %.1f cycles)\n", res.RegTransfers, res.AvgRegCommLatency())
	fmt.Printf("L1 miss rate     %.3f\n", res.Mem.L1MissRate())
	fmt.Printf("distant issued   %d (%.0f/1K instrs)\n", res.DistantIssued,
		1000*float64(res.DistantIssued)/float64(res.Instructions))
	fmt.Printf("distant fraction %.2f of commits\n", res.DistantILPFraction())
	if cfg.Cache == clustersim.DecentralizedCache {
		fmt.Printf("bank mispredicts %d\n", res.BankMispredicts)
		fmt.Printf("flush writebacks %d (%d flushes)\n", res.Mem.FlushWritebacks, res.Mem.Flushes)
	}
	if chk != nil {
		if err := chk.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "clustersim: invariant check FAILED:\n%v\n", err)
			os.Exit(1)
		}
		fmt.Printf("invariants       ok (%d cycles checked)\n", chk.CyclesChecked())
	}
	if ptimer != nil {
		fmt.Print(ptimer.Report().Table())
	}
}

// runDirect drives an explicitly constructed processor (spec or replay
// workloads). A replayer that runs off the end of its recording panics with
// a typed error the sweep runner would recover per-run; here the process IS
// the run, so recover it into an ordinary CLI failure.
func runDirect(p *clustersim.Processor, n uint64) (res clustersim.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			ex, ok := r.(*clustersim.TraceExhaustedError)
			if !ok {
				panic(r)
			}
			err = ex
		}
	}()
	return p.Run(n)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "clustersim: "+format+"\n", args...)
	os.Exit(2)
}
