// Command clustersim runs one benchmark on one processor configuration and
// prints the run statistics.
//
// Usage:
//
//	clustersim -bench gzip -policy explore -n 1000000
//	clustersim -bench swim -policy static -clusters 8 -cache dist -topo grid
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"clustersim"
)

func main() {
	bench := flag.String("bench", "gzip", "benchmark name (-list to enumerate)")
	list := flag.Bool("list", false, "list benchmarks and exit")
	policy := flag.String("policy", "explore", "static | explore | dilp | fg | fgcr")
	clusters := flag.Int("clusters", 16, "active clusters for -policy static")
	n := flag.Uint64("n", 1_000_000, "instructions to simulate")
	seed := flag.Uint64("seed", 1, "workload seed")
	cache := flag.String("cache", "central", "central | dist")
	topo := flag.String("topo", "ring", "ring | grid")
	interval := flag.Uint64("interval", 0, "interval length for dilp (0 = paper default)")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(clustersim.Benchmarks(), "\n"))
		return
	}

	cfg := clustersim.DefaultConfig()
	switch *cache {
	case "central":
	case "dist":
		cfg.Cache = clustersim.DecentralizedCache
	default:
		fatal("unknown -cache %q", *cache)
	}
	switch *topo {
	case "ring":
	case "grid":
		cfg.Topology = clustersim.GridTopology
	default:
		fatal("unknown -topo %q", *topo)
	}

	var ctrl clustersim.Controller
	switch *policy {
	case "static":
		ctrl = clustersim.NewStatic(*clusters)
	case "explore":
		ctrl = clustersim.NewExplore(clustersim.ExploreConfig{})
	case "dilp":
		ctrl = clustersim.NewDistantILP(clustersim.DistantILPConfig{Interval: *interval})
	case "fg":
		ctrl = clustersim.NewFineGrain(clustersim.FineGrainConfig{})
	case "fgcr":
		ctrl = clustersim.NewFineGrain(clustersim.FineGrainConfig{CallReturnOnly: true})
	default:
		fatal("unknown -policy %q", *policy)
	}

	res, err := clustersim.Run(*bench, *seed, cfg, ctrl, *n)
	if err != nil {
		fatal("%v", err)
	}

	fmt.Printf("benchmark        %s\n", res.Benchmark)
	fmt.Printf("policy           %s\n", res.Policy)
	fmt.Printf("instructions     %d\n", res.Instructions)
	fmt.Printf("cycles           %d\n", res.Cycles)
	fmt.Printf("IPC              %.3f\n", res.IPC())
	fmt.Printf("avg clusters     %.2f of %d\n", res.AvgActiveClusters(), cfg.Clusters)
	fmt.Printf("reconfigs        %d\n", res.Reconfigs)
	fmt.Printf("mispred interval %.0f instructions\n", res.MispredictInterval())
	fmt.Printf("reg transfers    %d (avg %.1f cycles)\n", res.RegTransfers, res.AvgRegCommLatency())
	fmt.Printf("L1 miss rate     %.3f\n", res.Mem.L1MissRate())
	fmt.Printf("distant issued   %d (%.0f/1K instrs)\n", res.DistantIssued,
		1000*float64(res.DistantIssued)/float64(res.Instructions))
	if cfg.Cache == clustersim.DecentralizedCache {
		fmt.Printf("bank mispredicts %d\n", res.BankMispredicts)
		fmt.Printf("flush writebacks %d (%d flushes)\n", res.Mem.FlushWritebacks, res.Mem.Flushes)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "clustersim: "+format+"\n", args...)
	os.Exit(2)
}
