// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig3,fig5 -scale 0.5 -bench gzip,swim
//
// Each experiment prints an aligned table whose rows/series correspond to
// the paper artifact named by its ID (see -list). EXPERIMENTS.md records
// the paper-vs-measured comparison for a full -scale 1 run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"clustersim/internal/experiments"
)

func main() {
	runIDs := flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	seed := flag.Uint64("seed", 1, "workload seed")
	scale := flag.Float64("scale", 1.0, "simulation window scale factor")
	benches := flag.String("bench", "", "comma-separated benchmark subset (default: all nine)")
	format := flag.String("format", "text", "output format: text | chart | csv")
	obsDir := flag.String("obs", "", "write per-run time-series CSVs and metrics snapshots under this directory (e.g. results/obs)")
	obsSample := flag.Uint64("obs-sample", 0, "probe sampling period in cycles for -obs (0 = 10K)")
	flag.Parse()

	reg := experiments.Registry()
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	var ids []string
	if *runIDs == "all" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*runIDs, ",")
	}

	opts := experiments.Options{Seed: *seed, Scale: *scale, ObsDir: *obsDir, ObsSamplePeriod: *obsSample}
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		driver, ok := reg[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		for _, table := range driver(opts) {
			switch *format {
			case "chart":
				fmt.Println(table.Chart())
			case "csv":
				fmt.Print(table.CSV())
			default:
				fmt.Println(table.Format())
			}
		}
		if *format != "csv" {
			fmt.Printf("(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
		}
	}
}
