// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig3,fig5 -scale 0.5 -bench gzip,swim
//	experiments -run all -parallel 8
//
// Each experiment prints an aligned table whose rows/series correspond to
// the paper artifact named by its ID (see -list). EXPERIMENTS.md records
// the paper-vs-measured comparison for a full -scale 1 run.
//
// Sweeps execute on a worker pool (-parallel, default GOMAXPROCS) behind a
// content-addressed run cache shared by all experiments of one invocation;
// results are bit-identical at any -parallel width. If any run fails, the
// failed experiment prints no table (no partial CSVs), every failure is
// reported at the end, and the command exits nonzero.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"clustersim/internal/experiments"
	"clustersim/internal/runner"
)

func main() {
	runIDs := flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	seed := flag.Uint64("seed", 1, "workload seed")
	scale := flag.Float64("scale", 1.0, "simulation window scale factor")
	benches := flag.String("bench", "", "comma-separated benchmark subset (default: all nine)")
	format := flag.String("format", "text", "output format: text | chart | csv")
	obsDir := flag.String("obs", "", "write per-run time-series CSVs and metrics snapshots under this directory (e.g. results/obs)")
	obsSample := flag.Uint64("obs-sample", 0, "probe sampling period in cycles for -obs (0 = 10K)")
	parallel := flag.Int("parallel", 0, "sweep worker-pool width (0 = GOMAXPROCS)")
	noCache := flag.Bool("no-cache", false, "disable the run cache (every sweep cell simulates)")
	checkInv := flag.Bool("check", false, "validate cycle-level invariants on every run (first violation aborts the sweep)")
	flag.Parse()

	reg := experiments.Registry()
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	var ids []string
	if *runIDs == "all" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*runIDs, ",")
	}

	// One runner for the whole invocation: experiments share its worker
	// pool and run cache, so configurations repeated between figures
	// (e.g. the static baselines) simulate exactly once.
	rn := runner.New(*parallel)
	rn.DisableCache = *noCache
	opts := experiments.Options{
		Seed: *seed, Scale: *scale,
		ObsDir: *obsDir, ObsSamplePeriod: *obsSample,
		Parallel: *parallel, Runner: rn, Check: *checkInv,
	}
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
	}

	var failed []string
	for _, id := range ids {
		id = strings.TrimSpace(id)
		driver, ok := reg[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tables, err := driver(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", id, err)
			failed = append(failed, id)
			continue
		}
		for _, table := range tables {
			switch *format {
			case "chart":
				fmt.Println(table.Chart())
			case "csv":
				fmt.Print(table.CSV())
			default:
				fmt.Println(table.Format())
			}
		}
		if *format != "csv" {
			fmt.Printf("(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
		}
	}

	st := rn.Stats()
	fmt.Fprintf(os.Stderr, "experiments: %d simulator runs, %d cache hits, %d deduped\n",
		st.Runs, st.CacheHits, st.Deduped)
	if *obsDir != "" {
		writeAggregate(*obsDir, rn)
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d experiment(s) failed: %s\n",
			len(failed), strings.Join(failed, ", "))
		os.Exit(1)
	}
}

// writeAggregate exports the merged metrics snapshot over every observed run
// of the invocation.
func writeAggregate(dir string, rn *runner.Runner) {
	snap, runs := rn.AggregateSnapshot()
	if runs == 0 {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: obs dir: %v\n", err)
		return
	}
	path := filepath.Join(dir, "aggregate.metrics.json")
	f, err := os.Create(path)
	if err == nil {
		err = snap.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: aggregate export: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "experiments: merged metrics of %d observed runs -> %s\n", runs, path)
}
