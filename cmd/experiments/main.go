// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig3,fig5 -scale 0.5 -bench gzip,swim
//	experiments -run all -parallel 8
//	experiments -run fig5 -spec specs/phase-thrash.json -bench phase-thrash
//	experiments -record-trace traces && experiments -run all -replay-trace traces
//	experiments -run policy,counterfactual -policy-spec specs/policy/dilp-1k.json,specs/policy/fg-window540.json
//	experiments -search 16 -bench gzip,vpr -scale 0.1
//
// Each experiment prints an aligned table whose rows/series correspond to
// the paper artifact named by its ID (see -list). EXPERIMENTS.md records
// the paper-vs-measured comparison for a full -scale 1 run.
//
// Sweeps execute on a worker pool (-parallel, default GOMAXPROCS) behind a
// content-addressed run cache shared by all experiments of one invocation;
// results are bit-identical at any -parallel width.
//
// # Crash safety
//
// With -checkpoint-dir set, every cacheable run snapshots its machine state
// to <dir>/<fingerprint>.snap every -checkpoint-every committed instructions
// and persists its finished Result to <dir>/results/<fingerprint>.json. A
// killed sweep is picked up with -resume: persisted results preload the run
// cache (finished cells are never re-simulated) and interrupted cells resume
// mid-run from their snapshots. Resumed output is bit-identical to an
// uninterrupted invocation.
//
// Individual run failures (panics, watchdog deadlocks, -timeout expiries) no
// longer abort a sweep: the experiment prints a partial table with "-" in the
// failed cells, and every failure — with its stack or machine-state dump — is
// written to the failure manifest (-manifest, default
// <checkpoint-dir>/failures.json) and summarized on stderr. -timeout bounds
// each run's wall-clock time, retried -retries times with backoff (a retry
// resumes from the run's last snapshot when checkpointing is on).
//
// # Telemetry
//
// -progress streams JSONL progress events (one per resolved run, with live
// completed/total counts and an EWMA-based ETA) to a file or stderr ('-').
// -serve exposes live sweep gauges (inflight runs, queue depth, worker
// utilization, cache hit rate) plus the Go runtime's own health metrics over
// HTTP while experiments run; -pprof adds the /debug/pprof/ endpoints.
// -profile-dir captures whole-invocation CPU and heap pprof profiles.
// -phase-profile attributes the sweep's wall-clock time to pipeline stages
// (commit, reconfig, issue, mem, dispatch, fetch, observe) by sampling, and
// prints the attribution table on stderr. All of it is attribution-only:
// simulation results are bit-identical with telemetry on or off.
//
// Exit status: 0 all runs succeeded; 1 an experiment produced no output;
// 2 usage error; 3 every experiment printed, but some cells failed.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"clustersim/internal/experiments"
	"clustersim/internal/obs"
	"clustersim/internal/policy"
	"clustersim/internal/runner"
	"clustersim/internal/spec"
	"clustersim/internal/telemetry"
	"clustersim/internal/workload"
)

func main() {
	runIDs := flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	seed := flag.Uint64("seed", 1, "workload seed")
	scale := flag.Float64("scale", 1.0, "simulation window scale factor")
	benches := flag.String("bench", "", "comma-separated benchmark subset (default: all nine)")
	format := flag.String("format", "text", "output format: text | chart | csv")
	obsDir := flag.String("obs", "", "write per-run time-series CSVs and metrics snapshots under this directory (e.g. results/obs)")
	obsSample := flag.Uint64("obs-sample", 0, "probe sampling period in cycles for -obs (0 = 10K)")
	parallel := flag.Int("parallel", 0, "sweep worker-pool width (0 = GOMAXPROCS)")
	noCache := flag.Bool("no-cache", false, "disable the run cache (every sweep cell simulates)")
	checkInv := flag.Bool("check", false, "validate cycle-level invariants on every run (first violation aborts the sweep)")
	ckDir := flag.String("checkpoint-dir", "", "crash-safety directory: runs snapshot here and persist finished results for -resume")
	ckEvery := flag.Uint64("checkpoint-every", 500_000, "instructions between mid-run snapshots when -checkpoint-dir is set (0 = only resume/cleanup)")
	resume := flag.Bool("resume", false, "preload results persisted under -checkpoint-dir by an earlier (possibly killed) invocation")
	timeout := flag.Duration("timeout", 0, "wall-clock budget per run attempt (0 = unlimited); expiry is a transient, retryable failure")
	retries := flag.Int("retries", 0, "extra attempts for transient (timed-out) runs")
	manifest := flag.String("manifest", "", "failure-manifest path (default <checkpoint-dir>/failures.json; empty without -checkpoint-dir)")
	progress := flag.String("progress", "", "stream JSONL progress events (with EWMA ETA) to this file, or '-' for stderr")
	profileDir := flag.String("profile-dir", "", "capture whole-invocation CPU and heap pprof profiles under this directory")
	phaseProfile := flag.Bool("phase-profile", false, "attribute sweep wall time to pipeline phases and print the table on stderr")
	phaseSample := flag.Uint64("phase-sample", 0, "phase-attribution sampling period in cycles (0 = default, 1 in 64)")
	serve := flag.String("serve", "", "serve live sweep metrics over HTTP on this address while experiments run")
	servePprof := flag.Bool("pprof", false, "with -serve, also expose Go profiling endpoints under /debug/pprof/")
	specFiles := flag.String("spec", "", "comma-separated declarative workload spec files to add to the benchmark set")
	policySpecs := flag.String("policy-spec", "", "comma-separated policy spec files for the policy/counterfactual experiments (first = counterfactual base)")
	cfK := flag.Int("counterfactual-k", 0, "alternative policies replayed per decision trace in the counterfactual experiment (0 = 3)")
	searchN := flag.Int("search", 0, "run a deterministic policy tournament with this population instead of experiments (prints a ranked CSV leaderboard)")
	recordTraceDir := flag.String("record-trace", "", "record every workload's instruction stream under this directory and exit without running experiments")
	replayTraceDir := flag.String("replay-trace", "", "replay recorded instruction streams from this directory instead of generating workloads")
	flag.Parse()

	reg := experiments.Registry()
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	var ids []string
	if *runIDs == "all" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*runIDs, ",")
	}

	// One runner for the whole invocation: experiments share its worker
	// pool and run cache, so configurations repeated between figures
	// (e.g. the static baselines) simulate exactly once.
	rn := runner.New(*parallel)
	rn.DisableCache = *noCache
	rn.Timeout = *timeout
	rn.Retries = *retries
	rn.CheckpointDir = *ckDir
	if *ckDir != "" {
		rn.CheckpointEvery = *ckEvery
	}

	// Sweep telemetry: any of -progress, -serve or -profile-dir instruments
	// the runner. Attribution never feeds back into simulation: results are
	// bit-identical with telemetry on or off.
	var progressW *telemetry.ProgressWriter
	if *progress != "" {
		// Wrapping stderr hides its Closer so ProgressWriter.Close never
		// closes the process's stderr; a real file is passed as-is and
		// closed properly.
		var w io.Writer = struct{ io.Writer }{os.Stderr}
		if *progress != "-" {
			f, err := os.Create(*progress)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: progress: %v\n", err)
				os.Exit(2)
			}
			w = f
		}
		progressW = telemetry.NewProgressWriter(w)
		defer progressW.Close()
	}
	var sweepReg *obs.Registry
	if *serve != "" {
		sweepReg = obs.NewRegistry()
		var serveOpts []obs.ServeOption
		endpoints := "/metrics, /metrics.csv, /debug/vars"
		if *servePprof {
			serveOpts = append(serveOpts, obs.WithPprof())
			endpoints += ", /debug/pprof/"
		}
		addr, closeServe, err := obs.Serve(*serve, sweepReg, serveOpts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(2)
		}
		defer closeServe()
		stopSampler := telemetry.StartRuntimeSampler(sweepReg, 0)
		defer stopSampler()
		fmt.Fprintf(os.Stderr, "experiments: serving sweep metrics on %s (%s)\n", addr, endpoints)
	}
	if progressW != nil || sweepReg != nil {
		rn.Meter = telemetry.NewSweepMeter(sweepReg, progressW)
	}
	if *profileDir != "" {
		stopProfiles, err := telemetry.StartProfiles(*profileDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(2)
		}
		defer func() {
			if err := stopProfiles(); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: profiles: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "experiments: wrote cpu.pprof and heap.pprof under %s\n", *profileDir)
		}()
	}
	var ptimer *telemetry.PhaseTimer
	if *phaseProfile {
		ptimer = telemetry.NewPhaseTimer(*phaseSample)
	}
	if *resume {
		if *ckDir == "" {
			fmt.Fprintln(os.Stderr, "experiments: -resume requires -checkpoint-dir")
			os.Exit(2)
		}
		n, err := rn.LoadPersisted()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: resume: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "experiments: resume: preloaded %d persisted result(s) from %s\n", n, *ckDir)
	}
	opts := experiments.Options{
		Seed: *seed, Scale: *scale,
		ObsDir: *obsDir, ObsSamplePeriod: *obsSample,
		Parallel: *parallel, Runner: rn, Check: *checkInv,
		Phases: ptimer,
	}
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
	}
	if *specFiles != "" {
		opts.Specs = make(map[string]*spec.Spec)
		for _, path := range strings.Split(*specFiles, ",") {
			s, err := spec.LoadFile(strings.TrimSpace(path))
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(2)
			}
			if len(s.Mix) > 0 {
				fmt.Fprintf(os.Stderr, "experiments: spec %s is a multi-programmed mix; sweeps take single-program specs (run mixes through the SMT API)\n", s.Name)
				os.Exit(2)
			}
			if _, dup := opts.Specs[s.Name]; dup {
				fmt.Fprintf(os.Stderr, "experiments: duplicate spec name %q\n", s.Name)
				os.Exit(2)
			}
			opts.Specs[s.Name] = s
		}
	}
	if *policySpecs != "" {
		for _, path := range strings.Split(*policySpecs, ",") {
			s, err := policy.LoadFile(strings.TrimSpace(path))
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(2)
			}
			opts.PolicySpecs = append(opts.PolicySpecs, s)
		}
	}
	opts.CounterfactualK = *cfK
	if *searchN > 0 {
		searchBenches := opts.Benchmarks
		if len(searchBenches) == 0 {
			searchBenches = workload.Benchmarks()
		}
		lb, err := policy.Search(policy.SearchOptions{
			Seed:         *seed,
			Population:   *searchN,
			Benchmarks:   searchBenches,
			Window:       opts.Window,
			WorkloadSeed: *seed,
			Runner:       rn,
			Progress: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "experiments: search: "+format+"\n", args...)
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: search: %v\n", err)
			os.Exit(1)
		}
		if err := lb.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: search: %v\n", err)
			os.Exit(1)
		}
		st := rn.Stats()
		fmt.Fprintf(os.Stderr, "experiments: search: %d candidates, %d simulator runs, %d cache hits\n",
			len(lb.Entries), st.Runs, st.CacheHits)
		return
	}
	if *recordTraceDir != "" {
		n, err := experiments.RecordTraces(opts, *recordTraceDir, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: record-trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "experiments: recorded %d trace(s) under %s\n", n, *recordTraceDir)
		return
	}
	if *replayTraceDir != "" {
		opts.ReplayTraceDir = *replayTraceDir
		opts.TraceCache = experiments.NewTraceCache()
	}

	var failed, partial []string
	var allFailures []runner.RunError
	var failTotal int
	for _, id := range ids {
		id = strings.TrimSpace(id)
		driver, ok := reg[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tables, err := driver(opts)
		if err != nil {
			var se *runner.SweepError
			if errors.As(err, &se) {
				allFailures = append(allFailures, se.Failures...)
				failTotal += se.Total
			}
			if len(tables) == 0 || se == nil {
				fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", id, err)
				failed = append(failed, id)
				continue
			}
			// Salvaged sweep: the successful cells still render; the
			// failed ones show "-" and land in the failure manifest.
			partial = append(partial, id)
			fmt.Fprintf(os.Stderr, "experiments: %s: %d of %d runs failed; printing partial tables\n",
				id, len(se.Failures), se.Total)
		}
		for _, table := range tables {
			switch *format {
			case "chart":
				fmt.Println(table.Chart())
			case "csv":
				fmt.Print(table.CSV())
			default:
				fmt.Println(table.Format())
			}
		}
		if *format != "csv" {
			fmt.Printf("(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
		}
	}

	st := rn.Stats()
	fmt.Fprintf(os.Stderr, "experiments: %d simulator runs, %d cache hits, %d deduped\n",
		st.Runs, st.CacheHits, st.Deduped)
	if ptimer != nil {
		fmt.Fprint(os.Stderr, ptimer.Report().Table())
	}
	if *obsDir != "" {
		writeAggregate(*obsDir, rn)
	}
	writeManifest(*manifest, *ckDir, allFailures, failTotal)
	switch {
	case len(failed) > 0:
		fmt.Fprintf(os.Stderr, "experiments: %d experiment(s) failed: %s\n",
			len(failed), strings.Join(failed, ", "))
		os.Exit(1)
	case len(partial) > 0:
		fmt.Fprintf(os.Stderr, "experiments: %d experiment(s) incomplete: %s\n",
			len(partial), strings.Join(partial, ", "))
		os.Exit(3)
	}
}

// writeManifest records every failed run of the invocation as JSON for
// post-mortems, at the explicit -manifest path or (by default) under the
// checkpoint directory. No failures, or nowhere to write, writes nothing.
func writeManifest(path, ckDir string, failures []runner.RunError, total int) {
	if len(failures) == 0 {
		return
	}
	if path == "" {
		if ckDir == "" {
			return
		}
		path = filepath.Join(ckDir, "failures.json")
	}
	se := &runner.SweepError{Failures: failures, Total: total}
	if err := se.WriteManifest(path); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: failure manifest: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "experiments: %d failure(s) recorded in %s\n", len(failures), path)
}

// writeAggregate exports the merged metrics snapshot over every observed run
// of the invocation.
func writeAggregate(dir string, rn *runner.Runner) {
	snap, runs := rn.AggregateSnapshot()
	if runs == 0 {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: obs dir: %v\n", err)
		return
	}
	path := filepath.Join(dir, "aggregate.metrics.json")
	f, err := os.Create(path)
	if err == nil {
		err = snap.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: aggregate export: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "experiments: merged metrics of %d observed runs -> %s\n", runs, path)
}
