package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestCrashRecovery exercises the crash-safety workflow end to end, the way
// an operator would hit it: a checkpointed sweep is SIGKILLed mid-flight,
// then rerun with -resume, and the final CSV must be byte-identical to an
// uninterrupted reference invocation.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "experiments")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	base := []string{"-run", "fig3", "-bench", "gzip", "-scale", "0.1",
		"-format", "csv", "-parallel", "2"}
	ckDir := filepath.Join(tmp, "ck")

	ref, err := exec.Command(bin, base...).Output()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	// Interrupted run: checkpoint aggressively, SIGKILL while in flight.
	// If the machine is fast enough to finish before the kill lands, the
	// resume below degenerates to an all-cache-hit rerun — still a valid
	// (if weaker) equivalence check, so the test stays timing-tolerant.
	crash := exec.Command(bin, append([]string{"-checkpoint-dir", ckDir,
		"-checkpoint-every", "5000"}, base...)...)
	crash.Stdout, crash.Stderr = nil, nil
	if err := crash.Start(); err != nil {
		t.Fatalf("crash run: %v", err)
	}
	time.Sleep(250 * time.Millisecond)
	crash.Process.Kill()
	crash.Wait()

	resumed, err := exec.Command(bin, append([]string{"-checkpoint-dir", ckDir,
		"-resume"}, base...)...).Output()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if string(resumed) != string(ref) {
		t.Fatalf("resumed CSV diverges from uninterrupted reference:\n--- reference ---\n%s--- resumed ---\n%s", ref, resumed)
	}

	// Success must have cleaned up every snapshot and persisted the cells.
	snaps, _ := filepath.Glob(filepath.Join(ckDir, "*.snap"))
	if len(snaps) != 0 {
		t.Errorf("stale snapshots after successful resume: %v", snaps)
	}
	results, _ := os.ReadDir(filepath.Join(ckDir, "results"))
	if len(results) != 4 {
		t.Errorf("persisted %d results, want 4 (one per fig3 cluster count)", len(results))
	}
}

// TestResumeRequiresCheckpointDir: -resume without -checkpoint-dir is a usage
// error (exit 2), not a silent fresh start.
func TestResumeRequiresCheckpointDir(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "experiments")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	err := exec.Command(bin, "-resume", "-run", "params").Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit code 2, got %v", err)
	}
}
