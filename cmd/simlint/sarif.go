package main

import (
	"path/filepath"
	"strings"

	"clustersim/internal/analysis"
)

// SARIF 2.1.0 document types — the subset GitHub code scanning consumes.
// Hand-rolled (stdlib-only) but schema-faithful: sarifReport marshals to a
// document that validates against the official JSON schema (the golden
// test checks the required-property skeleton).

type sarifReport struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

const sarifSchemaURI = "https://json.schemastore.org/sarif-2.1.0.json"

// sarifDocument renders the diagnostics as one SARIF run. Rules cover the
// full suite (not just the analyzers that fired) so code-scanning UIs can
// show the complete rule inventory; file paths are made repo-relative to
// root when possible, since SARIF artifact URIs are repository-rooted.
func sarifDocument(diags []analysis.Diagnostic, root string, rules []ruleInfo) sarifReport {
	srules := make([]sarifRule, 0, len(rules))
	for _, r := range rules {
		srules = append(srules, sarifRule{
			ID:               r.Name,
			ShortDescription: sarifMessage{Text: r.Doc},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: sarifURI(d.Pos.Filename, root)},
					Region: sarifRegion{
						StartLine:   d.Pos.Line,
						StartColumn: d.Pos.Column,
					},
				},
			}},
		})
	}
	return sarifReport{
		Schema:  sarifSchemaURI,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "simlint", Rules: srules}},
			Results: results,
		}},
	}
}

// ruleInfo names one analyzer for the SARIF rule inventory.
type ruleInfo struct {
	Name string
	Doc  string
}

// sarifURI converts a diagnostic's file path to a forward-slashed URI,
// relative to the analysis root when the file lies under it.
func sarifURI(file, root string) string {
	if root != "" {
		if abs, err := filepath.Abs(root); err == nil {
			if rel, err := filepath.Rel(abs, file); err == nil && !strings.HasPrefix(rel, "..") {
				return filepath.ToSlash(rel)
			}
		}
	}
	return filepath.ToSlash(file)
}
