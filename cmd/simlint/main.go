// Command simlint is the multichecker driver for the simulator's custom
// static-analysis suite: the four syntactic passes (determinism,
// snapstate, statsconserve, nopanic) and the four dataflow-aware passes
// (cachekey, hotalloc, syncsafety, errflow) — see docs/ANALYSIS.md. It
// type-checks the module from source — no module downloads, no pre-built
// export data — and exits nonzero on any finding, so CI can gate merges
// on it:
//
//	go run ./cmd/simlint ./...
//	go run ./cmd/simlint -json ./internal/mem ./internal/interconnect
//	go run ./cmd/simlint -sarif ./... > simlint.sarif
//
// Exit codes: 0 clean, 1 findings reported, 2 load or usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"clustersim/internal/analysis"
	"clustersim/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// finding is the machine-readable form of one diagnostic.
type finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// report is the top-level -json document.
type report struct {
	Findings []finding `json:"findings"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON document on stdout")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 document on stdout (for code-scanning upload)")
	tests := fs.Bool("tests", true, "also analyze _test.go files")
	dir := fs.String("C", ".", "module root `directory` to analyze")
	list := fs.Bool("list", false, "list the analyzers in the suite and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: simlint [-json|-sarif] [-tests=false] [-C dir] packages...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "simlint: -json and -sarif are mutually exclusive")
		return 2
	}
	if *list {
		for _, a := range suite.Analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return 2
	}

	loader, err := analysis.NewLoader(*dir, *tests)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	units, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	diags, err := analysis.Run(units, suite.Analyzers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	switch {
	case *jsonOut:
		rep := report{Findings: []finding{}}
		for _, d := range diags {
			rep.Findings = append(rep.Findings, finding{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	case *sarifOut:
		rules := make([]ruleInfo, 0, len(suite.Analyzers))
		for _, a := range suite.Analyzers {
			rules = append(rules, ruleInfo{Name: a.Name, Doc: a.Doc})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sarifDocument(diags, *dir, rules)); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut && !*sarifOut {
			fmt.Fprintf(stderr, "simlint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
