package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module with one library package whose
// cleanliness is controlled by the caller.
func writeModule(t *testing.T, libSrc string) string {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"),
		[]byte("module smoketest\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "lib")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "lib.go"), []byte(libSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	return root
}

const cleanSrc = `package lib

func Add(a, b int) int { return a + b }
`

// dirtySrc trips nopanic once.
const dirtySrc = `package lib

func Add(a, b int) int {
	if a < 0 {
		panic("negative")
	}
	return a + b
}
`

func TestExitCodes(t *testing.T) {
	var out, errBuf bytes.Buffer

	clean := writeModule(t, cleanSrc)
	if code := run([]string{"-C", clean, "./..."}, &out, &errBuf); code != 0 {
		t.Fatalf("clean module: exit %d, stderr: %s", code, errBuf.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean module produced output: %s", out.String())
	}

	out.Reset()
	errBuf.Reset()
	dirty := writeModule(t, dirtySrc)
	if code := run([]string{"-C", dirty, "./..."}, &out, &errBuf); code != 1 {
		t.Fatalf("dirty module: exit %d, want 1; stderr: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "nopanic") {
		t.Errorf("text output missing nopanic finding: %s", out.String())
	}
	if !strings.Contains(errBuf.String(), "1 finding(s)") {
		t.Errorf("stderr missing finding count: %s", errBuf.String())
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errBuf bytes.Buffer
	dirty := writeModule(t, dirtySrc)
	if code := run([]string{"-json", "-C", dirty, "./..."}, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errBuf.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("got %d findings, want 1: %+v", len(rep.Findings), rep.Findings)
	}
	f := rep.Findings[0]
	if f.Analyzer != "nopanic" || f.Line == 0 || !strings.HasSuffix(f.File, "lib.go") {
		t.Errorf("unexpected finding: %+v", f)
	}
}

func TestUsageAndListExitCodes(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(nil, &out, &errBuf); code != 2 {
		t.Errorf("no packages: exit %d, want 2", code)
	}
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"-list"}, &out, &errBuf); code != 0 {
		t.Errorf("-list: exit %d, want 0", code)
	}
	for _, name := range []string{"determinism", "snapstate", "statsconserve", "nopanic"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}
