package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update rewrites golden files in place instead of diffing against them.
var update = flag.Bool("update", false, "rewrite golden files")

// writeModule lays out a throwaway module with one library package whose
// cleanliness is controlled by the caller.
func writeModule(t *testing.T, libSrc string) string {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"),
		[]byte("module smoketest\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "lib")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "lib.go"), []byte(libSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	return root
}

const cleanSrc = `package lib

func Add(a, b int) int { return a + b }
`

// dirtySrc trips nopanic once.
const dirtySrc = `package lib

func Add(a, b int) int {
	if a < 0 {
		panic("negative")
	}
	return a + b
}
`

func TestExitCodes(t *testing.T) {
	var out, errBuf bytes.Buffer

	clean := writeModule(t, cleanSrc)
	if code := run([]string{"-C", clean, "./..."}, &out, &errBuf); code != 0 {
		t.Fatalf("clean module: exit %d, stderr: %s", code, errBuf.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean module produced output: %s", out.String())
	}

	out.Reset()
	errBuf.Reset()
	dirty := writeModule(t, dirtySrc)
	if code := run([]string{"-C", dirty, "./..."}, &out, &errBuf); code != 1 {
		t.Fatalf("dirty module: exit %d, want 1; stderr: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "nopanic") {
		t.Errorf("text output missing nopanic finding: %s", out.String())
	}
	if !strings.Contains(errBuf.String(), "1 finding(s)") {
		t.Errorf("stderr missing finding count: %s", errBuf.String())
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errBuf bytes.Buffer
	dirty := writeModule(t, dirtySrc)
	if code := run([]string{"-json", "-C", dirty, "./..."}, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errBuf.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("got %d findings, want 1: %+v", len(rep.Findings), rep.Findings)
	}
	f := rep.Findings[0]
	if f.Analyzer != "nopanic" || f.Line == 0 || !strings.HasSuffix(f.File, "lib.go") {
		t.Errorf("unexpected finding: %+v", f)
	}
}

func TestUsageAndListExitCodes(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(nil, &out, &errBuf); code != 2 {
		t.Errorf("no packages: exit %d, want 2", code)
	}
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"-json", "-sarif", "./..."}, &out, &errBuf); code != 2 {
		t.Errorf("-json -sarif: exit %d, want 2", code)
	}
	out.Reset()
	errBuf.Reset()
	if code := run([]string{"-list"}, &out, &errBuf); code != 0 {
		t.Errorf("-list: exit %d, want 0", code)
	}
	for _, name := range []string{
		"determinism", "snapstate", "statsconserve", "nopanic",
		"cachekey", "hotalloc", "syncsafety", "errflow",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
	if got := strings.Count(strings.TrimSpace(out.String()), "\n") + 1; got != 8 {
		t.Errorf("-list printed %d analyzers, want 8:\n%s", got, out.String())
	}
}

// TestSARIFOutput validates -sarif against the golden document and the
// SARIF 2.1.0 required-property skeleton. The golden is byte-exact: file
// URIs are root-relative (not tempdir-absolute), so the document is
// reproducible across machines.
func TestSARIFOutput(t *testing.T) {
	var out, errBuf bytes.Buffer
	dirty := writeModule(t, dirtySrc)
	if code := run([]string{"-sarif", "-C", dirty, "./..."}, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errBuf.String())
	}

	// Schema skeleton: unmarshal generically and check every property the
	// 2.1.0 schema marks required on the path to a result location.
	var doc map[string]any
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if doc["version"] != "2.1.0" {
		t.Errorf("version = %v, want 2.1.0", doc["version"])
	}
	if s, _ := doc["$schema"].(string); !strings.Contains(s, "sarif-2.1.0") {
		t.Errorf("$schema = %v", doc["$schema"])
	}
	runs, ok := doc["runs"].([]any)
	if !ok || len(runs) != 1 {
		t.Fatalf("runs = %v, want one run", doc["runs"])
	}
	run0 := runs[0].(map[string]any)
	driver := run0["tool"].(map[string]any)["driver"].(map[string]any)
	if driver["name"] != "simlint" {
		t.Errorf("driver name = %v", driver["name"])
	}
	if rules, ok := driver["rules"].([]any); !ok || len(rules) != 8 {
		t.Errorf("driver rules = %v, want the full 8-pass inventory", driver["rules"])
	}
	results, ok := run0["results"].([]any)
	if !ok || len(results) != 1 {
		t.Fatalf("results = %v, want one", run0["results"])
	}
	res := results[0].(map[string]any)
	if res["ruleId"] != "nopanic" || res["level"] != "error" {
		t.Errorf("result = %+v", res)
	}
	if _, ok := res["message"].(map[string]any)["text"].(string); !ok {
		t.Errorf("result message missing text: %+v", res["message"])
	}
	loc := res["locations"].([]any)[0].(map[string]any)["physicalLocation"].(map[string]any)
	if uri := loc["artifactLocation"].(map[string]any)["uri"]; uri != "lib/lib.go" {
		t.Errorf("artifact uri = %v, want lib/lib.go", uri)
	}
	if line := loc["region"].(map[string]any)["startLine"]; line != float64(5) {
		t.Errorf("startLine = %v, want 5", line)
	}

	// Byte-exact golden (refresh with -run TestSARIFOutput -update).
	golden := filepath.Join("testdata", "dirty.sarif.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("SARIF output differs from golden %s:\n got: %s\nwant: %s", golden, out.String(), want)
	}
}
