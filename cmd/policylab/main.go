// Command policylab searches reconfiguration-policy parameter space and
// emits a ranked leaderboard.
//
// Usage:
//
//	policylab -bench gzip,vpr -scale 0.1 -pop 16 -gens 3 -out results/policies
//	policylab -pop 32 -checkpoint-dir ck          # full matrix, crash-safe
//	policylab -pop 32 -checkpoint-dir ck -resume  # finish a killed search
//
// The search is a deterministic tournament (internal/policy): generation
// zero seeds the paper's controllers (§4.2 exploration, §4.3 distant-ILP,
// §4.4 fine-grain and its call/return variant) plus random
// parameterizations; each generation evaluates benchmark × candidate as one
// cacheable sweep, keeps the elites and breeds the rest by tournament
// selection with family-specific mutation. Candidates are scored on geomean
// IPC minus weighted energy-per-instruction and reconfiguration churn.
//
// Identical invocations produce identical leaderboards, and every
// evaluation is content-addressed (the spec fingerprint is part of the run
// cache key), so a rerun — or a -resume after a crash — simulates nothing
// that already completed.
//
// -out writes <prefix>.csv and <prefix>.json; without it the CSV goes to
// stdout.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"clustersim/internal/experiments"
	"clustersim/internal/policy"
	"clustersim/internal/runner"
	"clustersim/internal/workload"
)

func main() {
	benches := flag.String("bench", "", "comma-separated benchmark subset (default: all nine)")
	scale := flag.Float64("scale", 1.0, "simulation window scale factor")
	seed := flag.Uint64("seed", 42, "search seed (candidate generation and mutation)")
	wseed := flag.Uint64("workload-seed", 1, "workload seed for every evaluation run")
	pop := flag.Int("pop", 16, "candidates per generation (minimum 4)")
	gens := flag.Int("gens", 3, "generations")
	elites := flag.Int("elites", 0, "candidates surviving unchanged per generation (0 = pop/4)")
	parallel := flag.Int("parallel", 0, "sweep worker-pool width (0 = GOMAXPROCS)")
	ckDir := flag.String("checkpoint-dir", "", "crash-safety directory: runs snapshot here and persist finished results for -resume")
	resume := flag.Bool("resume", false, "preload results persisted under -checkpoint-dir by an earlier invocation")
	out := flag.String("out", "", "output path prefix: writes <prefix>.csv and <prefix>.json (default: CSV on stdout)")
	flag.Parse()

	benchList := workload.Benchmarks()
	if *benches != "" {
		benchList = strings.Split(*benches, ",")
	}

	rn := runner.New(*parallel)
	rn.CheckpointDir = *ckDir
	if *resume {
		if *ckDir == "" {
			fmt.Fprintln(os.Stderr, "policylab: -resume requires -checkpoint-dir")
			os.Exit(2)
		}
		n, err := rn.LoadPersisted()
		if err != nil {
			fmt.Fprintf(os.Stderr, "policylab: resume: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "policylab: resume: preloaded %d persisted result(s) from %s\n", n, *ckDir)
	}

	// Windows come from the experiments package's calibrated per-benchmark
	// table, so a policylab IPC is directly comparable to the figures.
	windows := experiments.Options{Scale: *scale}

	lb, err := policy.Search(policy.SearchOptions{
		Seed:         *seed,
		Population:   *pop,
		Generations:  *gens,
		Elites:       *elites,
		Benchmarks:   benchList,
		Window:       windows.Window,
		WorkloadSeed: *wseed,
		Runner:       rn,
		Progress: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "policylab: "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "policylab: %v\n", err)
		os.Exit(1)
	}

	if *out == "" {
		if err := lb.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "policylab: %v\n", err)
			os.Exit(1)
		}
	} else {
		if dir := filepath.Dir(*out); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "policylab: %v\n", err)
				os.Exit(1)
			}
		}
		write := func(path string, render func(f io.Writer) error) {
			f, err := os.Create(path)
			if err == nil {
				err = render(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "policylab: %v\n", err)
				os.Exit(1)
			}
		}
		write(*out+".csv", lb.WriteCSV)
		write(*out+".json", lb.WriteJSON)
		fmt.Fprintf(os.Stderr, "policylab: wrote %s.csv and %s.json\n", *out, *out)
	}

	best := lb.Entries[0]
	st := rn.Stats()
	fmt.Fprintf(os.Stderr, "policylab: %d candidates over %s; best %s (fp %016x) score %.4f geomean IPC %.4f; %d runs, %d cache hits\n",
		len(lb.Entries), strings.Join(benchList, ","), best.Spec.Name, best.Fingerprint,
		best.Aggregate.Score, best.Aggregate.IPC, st.Runs, st.CacheHits)
}
